#include "db/table.hpp"

#include <algorithm>
#include <queue>

#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::db {

using support::EvalError;

// ---------------------------------------------------------------------------
// Index

Index::Index(std::string name, std::size_t column, Kind kind,
             PartitionRouter router, bool routed)
    : name_(std::move(name)),
      column_(column),
      kind_(kind),
      router_(std::move(router)),
      routed_(routed) {
  if (kind_ == Kind::kHash) {
    hash_.resize(router_.partitions());
  } else {
    ordered_.resize(router_.partitions());
  }
}

void Index::insert(const Value& key, std::size_t row_id) {
  const std::size_t shard = row_id_partition(row_id);
  if (kind_ == Kind::kHash) {
    hash_.at(shard).emplace(key, row_id);
  } else {
    ordered_.at(shard).emplace(key, row_id);
  }
}

void Index::erase(const Value& key, std::size_t row_id) {
  const std::size_t shard = row_id_partition(row_id);
  if (kind_ == Kind::kHash) {
    auto [begin, end] = hash_.at(shard).equal_range(key);
    for (auto it = begin; it != end; ++it) {
      if (it->second == row_id) {
        hash_[shard].erase(it);
        return;
      }
    }
  } else {
    auto [begin, end] = ordered_.at(shard).equal_range(key);
    for (auto it = begin; it != end; ++it) {
      if (it->second == row_id) {
        ordered_[shard].erase(it);
        return;
      }
    }
  }
}

std::vector<std::size_t> Index::equal_range(const Value& key) const {
  std::vector<std::size_t> out;
  // The indexed column being the partition column means the heap router
  // already decided which shard this key's rows live in: probe only it.
  const std::size_t first = routed_ ? router_.route(key) : 0;
  const std::size_t last = routed_ ? first + 1 : shard_count();
  for (std::size_t shard = first; shard < last; ++shard) {
    if (kind_ == Kind::kHash) {
      auto [begin, end] = hash_[shard].equal_range(key);
      for (auto it = begin; it != end; ++it) out.push_back(it->second);
    } else {
      auto [begin, end] = ordered_[shard].equal_range(key);
      for (auto it = begin; it != end; ++it) out.push_back(it->second);
    }
  }
  return out;
}

std::vector<std::size_t> Index::range(const Value& lo, const Value& hi) const {
  return range_open(&lo, &hi);
}

std::vector<std::size_t> Index::range_open(const Value* lo,
                                           const Value* hi) const {
  if (kind_ != Kind::kOrdered) {
    throw EvalError(support::cat("index ", name_, " does not support range scans"));
  }
  const auto scan_shard = [&](const OrderedShard& shard, auto&& emit) {
    auto it = lo != nullptr ? shard.lower_bound(*lo) : shard.begin();
    for (; it != shard.end(); ++it) {
      if (it->first.is_null()) continue;
      if (hi != nullptr && Value::compare_total(it->first, *hi) > 0) break;
      emit(it->first, it->second);
    }
  };

  std::vector<std::size_t> out;
  if (ordered_.size() == 1) {
    scan_shard(ordered_[0], [&](const Value&, std::size_t id) {
      out.push_back(id);
    });
    return out;
  }

  // Multi-shard: each shard yields its slice already in key order; a k-way
  // heap merge over (key pointer, shard) produces global key order without
  // copying keys, and the shard-index tie-break keeps equal keys in
  // partition order — the deterministic merge the scan contract promises.
  std::vector<std::vector<std::pair<const Value*, std::size_t>>> slices(
      ordered_.size());
  std::size_t total = 0;
  for (std::size_t shard = 0; shard < ordered_.size(); ++shard) {
    scan_shard(ordered_[shard], [&](const Value& key, std::size_t id) {
      slices[shard].emplace_back(&key, id);
    });
    total += slices[shard].size();
  }
  struct Head {
    std::size_t shard;
    std::size_t pos;
  };
  const auto after = [&](const Head& a, const Head& b) {
    const int cmp = Value::compare_total(*slices[a.shard][a.pos].first,
                                         *slices[b.shard][b.pos].first);
    if (cmp != 0) return cmp > 0;
    return a.shard > b.shard;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(after)> heap(after);
  for (std::size_t shard = 0; shard < slices.size(); ++shard) {
    if (!slices[shard].empty()) heap.push({shard, 0});
  }
  out.reserve(total);
  while (!heap.empty()) {
    const Head head = heap.top();
    heap.pop();
    out.push_back(slices[head.shard][head.pos].second);
    if (head.pos + 1 < slices[head.shard].size()) {
      heap.push({head.shard, head.pos + 1});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Table

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  if (const auto& spec = schema_.partition()) {
    // TableSchema::set_partition is the only way a spec gets here and it
    // already validated the column, count, and bounds — just resolve the
    // routing column.
    partition_column_ = schema_.find_column(spec->column);
    router_ = PartitionRouter(*spec);
  }
  parts_.resize(router_.partitions());
  if (columnar()) {
    for (PartitionStore& part : parts_) {
      part.cols.resize(schema_.column_count());
    }
  }
}

std::size_t Table::heap_size() const noexcept {
  std::size_t total = 0;
  for (const PartitionStore& part : parts_) total += part.rows.size();
  return total;
}

std::uint64_t Table::table_version() const noexcept {
  std::uint64_t total = 0;
  for (const PartitionStore& part : parts_) total += part.version;
  return total;
}

Row Table::validate(Row row) const {
  if (row.size() != schema_.column_count()) {
    throw EvalError(support::cat("table ", schema_.name(), " expects ",
                                 schema_.column_count(), " values, got ",
                                 row.size()));
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& col = schema_.column(i);
    row[i] = row[i].coerce_to(col.type);
    if (row[i].is_null() && (!col.nullable || col.primary_key)) {
      throw EvalError(support::cat("NULL not allowed in ", schema_.name(), ".",
                                   col.name));
    }
  }
  return row;
}

namespace {

// Which typed lane vector a column's cells live in: INTEGER, BOOLEAN, and
// DATETIME all encode as int64 lanes; DOUBLE as double lanes; TEXT as
// string lanes. Must stay in sync with Table::ColumnSlice's doc contract.
bool uses_int_lanes(ValueType type) noexcept {
  return type == ValueType::kInt || type == ValueType::kBool ||
         type == ValueType::kDateTime;
}

std::int64_t int_lane_of(const Value& v, ValueType type) {
  if (v.is_null()) return 0;
  if (type == ValueType::kBool) return v.as_bool() ? 1 : 0;
  if (type == ValueType::kDateTime) return v.as_datetime();
  return v.as_int();
}

}  // namespace

void Table::append_column_lanes(PartitionStore& part, const Row& row) {
  for (std::size_t c = 0; c < row.size(); ++c) {
    ColumnVec& col = part.cols[c];
    const Value& v = row[c];
    const ValueType type = schema_.column(c).type;
    col.valid.push_back(v.is_null() ? 0 : 1);
    if (uses_int_lanes(type)) {
      col.ints.push_back(int_lane_of(v, type));
    } else if (type == ValueType::kDouble) {
      col.reals.push_back(v.is_null() ? 0.0 : v.as_double());
    } else {
      col.strs.push_back(v.is_null() ? std::string() : v.as_string());
    }
  }
}

void Table::overwrite_column_lanes(PartitionStore& part, std::size_t lane,
                                   const Row& row) {
  for (std::size_t c = 0; c < row.size(); ++c) {
    ColumnVec& col = part.cols[c];
    const Value& v = row[c];
    const ValueType type = schema_.column(c).type;
    col.valid[lane] = v.is_null() ? 0 : 1;
    if (uses_int_lanes(type)) {
      col.ints[lane] = int_lane_of(v, type);
    } else if (type == ValueType::kDouble) {
      col.reals[lane] = v.is_null() ? 0.0 : v.as_double();
    } else {
      col.strs[lane] = v.is_null() ? std::string() : v.as_string();
    }
  }
}

Table::ColumnSlice Table::column_slice(std::size_t partition,
                                       std::size_t column) const {
  if (!columnar()) {
    throw EvalError(support::cat("table ", schema_.name(),
                                 " is not columnar; column slices are only "
                                 "maintained under STORAGE COLUMNAR"));
  }
  const PartitionStore& part = parts_.at(partition);
  const ColumnVec& col = part.cols.at(column);
  ColumnSlice slice;
  slice.valid = col.valid.data();
  slice.size = part.rows.size();
  const ValueType type = schema_.column(column).type;
  if (uses_int_lanes(type)) {
    slice.ints = col.ints.data();
  } else if (type == ValueType::kDouble) {
    slice.reals = col.reals.data();
  } else {
    slice.strs = col.strs.data();
  }
  return slice;
}

Table::KeySlice Table::key_slice(std::size_t partition,
                                 std::size_t column) const {
  return {column_slice(partition, column), live_bits(partition), partition};
}

std::vector<Table::KeySlice> Table::key_slices(
    std::size_t column, std::optional<std::size_t> pinned) const {
  std::vector<KeySlice> slices;
  if (pinned) {
    slices.push_back(key_slice(*pinned, column));
    return slices;
  }
  slices.reserve(parts_.size());
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    slices.push_back(key_slice(p, column));
  }
  return slices;
}

std::size_t Table::place_row(std::size_t partition, Row row) {
  PartitionStore& part = parts_[partition];
  const std::size_t local = part.rows.size();
  if (local >= kRowIdLocalMask) {
    throw EvalError(support::cat("partition ", partition, " of table ",
                                 schema_.name(), " is full"));
  }
  const std::size_t row_id = make_row_id(partition, local);
  part.rows.push_back(std::move(row));
  part.live.push_back(1);
  if (columnar()) append_column_lanes(part, part.rows.back());
  ++part.live_count;
  ++part.version;
  ++live_count_;
  for (const auto& index : indexes_) {
    index->insert(part.rows.back()[index->column()], row_id);
  }
  return row_id;
}

std::size_t Table::insert(Row row) {
  row = validate(std::move(row));
  if (const auto pk = schema_.primary_key()) {
    if (const Index* index = find_index_on(*pk)) {
      if (!index->equal_range(row[*pk]).empty()) {
        throw EvalError(support::cat("duplicate primary key ",
                                     row[*pk].to_display(), " in table ",
                                     schema_.name()));
      }
    } else {
      for (const PartitionStore& part : parts_) {
        for (std::size_t local = 0; local < part.rows.size(); ++local) {
          if (part.live[local] && part.rows[local][*pk].equals_total(row[*pk])) {
            throw EvalError(support::cat("duplicate primary key ",
                                         row[*pk].to_display(), " in table ",
                                         schema_.name()));
          }
        }
      }
    }
  }
  const std::size_t target = route_row(row);
  return place_row(target, std::move(row));
}

void Table::erase(std::size_t row_id) {
  if (!is_live(row_id)) {
    throw EvalError(support::cat("row ", row_id, " is not live in table ",
                                 schema_.name()));
  }
  PartitionStore& part = parts_[row_id_partition(row_id)];
  const std::size_t local = row_id_local(row_id);
  for (const auto& index : indexes_) {
    index->erase(part.rows[local][index->column()], row_id);
  }
  part.live[local] = false;
  --part.live_count;
  ++part.version;
  --live_count_;
}

void Table::update(std::size_t row_id, Row row) {
  if (!is_live(row_id)) {
    throw EvalError(support::cat("row ", row_id, " is not live in table ",
                                 schema_.name()));
  }
  row = validate(std::move(row));
  const std::size_t partition = row_id_partition(row_id);
  const std::size_t target = route_row(row);
  PartitionStore& part = parts_[partition];
  const std::size_t local = row_id_local(row_id);
  for (const auto& index : indexes_) {
    index->erase(part.rows[local][index->column()], row_id);
  }
  if (target == partition) {
    part.rows[local] = std::move(row);
    if (columnar()) overwrite_column_lanes(part, local, part.rows[local]);
    for (const auto& index : indexes_) {
      index->insert(part.rows[local][index->column()], row_id);
    }
    ++part.version;
    return;
  }
  // The partition column changed its routing: the row moves. The old id
  // becomes a tombstone; validation already ran, so the move skips insert()
  // (whose duplicate-PK probe would find the row itself). Both sides'
  // versions move: the source here, the target inside place_row.
  part.live[local] = false;
  --part.live_count;
  ++part.version;
  --live_count_;
  place_row(target, std::move(row));
}

std::vector<std::size_t> Table::live_rows() const {
  std::vector<std::size_t> out;
  out.reserve(live_count_);
  for_each_live_row([&](std::size_t row_id, const Row&) {
    out.push_back(row_id);
  });
  return out;
}

std::vector<std::size_t> Table::live_rows_in(std::size_t partition) const {
  std::vector<std::size_t> out;
  out.reserve(parts_.at(partition).live_count);
  for_each_live_row_in(partition, [&](std::size_t row_id, const Row&) {
    out.push_back(row_id);
  });
  return out;
}

Index& Table::create_index(std::string name, std::size_t column, Index::Kind kind) {
  if (column >= schema_.column_count()) {
    throw EvalError(support::cat("index column ", column, " out of range for ",
                                 schema_.name()));
  }
  auto index = std::make_unique<Index>(
      std::move(name), column, kind, router_,
      partition_column_.has_value() && *partition_column_ == column);
  for_each_live_row([&](std::size_t row_id, const Row& row) {
    index->insert(row[column], row_id);
  });
  indexes_.push_back(std::move(index));
  return *indexes_.back();
}

const Index* Table::find_index_on(std::size_t column) const {
  for (const auto& index : indexes_) {
    if (index->column() == column) return index.get();
  }
  return nullptr;
}

}  // namespace kojak::db
