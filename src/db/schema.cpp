#include "db/schema.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::db {

TableSchema::TableSchema(std::string name, std::vector<ColumnDef> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    for (std::size_t j = i + 1; j < columns_.size(); ++j) {
      if (support::iequals(columns_[i].name, columns_[j].name)) {
        throw support::EvalError(support::cat("duplicate column '",
                                              columns_[j].name, "' in table ",
                                              name_));
      }
    }
  }
}

std::optional<std::size_t> TableSchema::find_column(std::string_view name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (support::iequals(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> TableSchema::primary_key() const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].primary_key) return i;
  }
  return std::nullopt;
}

void TableSchema::set_partition(PartitionSpec spec) {
  if (!find_column(spec.column)) {
    throw support::EvalError(support::cat("unknown partition column '",
                                          spec.column, "' in table ", name_));
  }
  if (spec.method == PartitionSpec::Method::kRange) {
    spec.partitions = spec.range_bounds.size() + 1;
    for (std::size_t i = 0; i < spec.range_bounds.size(); ++i) {
      if (spec.range_bounds[i].is_null()) {
        throw support::EvalError(support::cat(
            "range partition bounds of table ", name_, " must not be NULL"));
      }
      if (i > 0 && Value::compare_total(spec.range_bounds[i - 1],
                                        spec.range_bounds[i]) >= 0) {
        throw support::EvalError(support::cat(
            "range partition bounds of table ", name_,
            " must be strictly ascending"));
      }
    }
  }
  if (spec.partitions == 0) {
    throw support::EvalError(support::cat("table ", name_,
                                          " needs at least one partition"));
  }
  if (spec.partitions > kMaxTablePartitions) {
    throw support::EvalError(support::cat("table ", name_, " declares ",
                                          spec.partitions,
                                          " partitions; the maximum is ",
                                          kMaxTablePartitions));
  }
  partition_ = std::move(spec);
}

std::string TableSchema::to_ddl() const {
  std::string out = "CREATE TABLE " + name_ + " (";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ' ';
    out += to_string(columns_[i].type);
    if (columns_[i].primary_key) out += " PRIMARY KEY";
    if (!columns_[i].nullable && !columns_[i].primary_key) out += " NOT NULL";
  }
  out += ")";
  if (partition_) {
    if (partition_->method == PartitionSpec::Method::kHash) {
      out += support::cat(" PARTITION BY HASH(", partition_->column,
                          ") PARTITIONS ", partition_->partitions);
    } else {
      out += support::cat(" PARTITION BY RANGE(", partition_->column,
                          ") VALUES (");
      for (std::size_t i = 0; i < partition_->range_bounds.size(); ++i) {
        if (i > 0) out += ", ";
        out += partition_->range_bounds[i].to_sql_literal();
      }
      out += ")";
    }
  }
  if (storage_ == StorageMode::kColumnar) out += " STORAGE COLUMNAR";
  return out;
}

}  // namespace kojak::db
