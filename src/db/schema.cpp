#include "db/schema.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::db {

TableSchema::TableSchema(std::string name, std::vector<ColumnDef> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    for (std::size_t j = i + 1; j < columns_.size(); ++j) {
      if (support::iequals(columns_[i].name, columns_[j].name)) {
        throw support::EvalError(support::cat("duplicate column '",
                                              columns_[j].name, "' in table ",
                                              name_));
      }
    }
  }
}

std::optional<std::size_t> TableSchema::find_column(std::string_view name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (support::iequals(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> TableSchema::primary_key() const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].primary_key) return i;
  }
  return std::nullopt;
}

std::string TableSchema::to_ddl() const {
  std::string out = "CREATE TABLE " + name_ + " (";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ' ';
    out += to_string(columns_[i].type);
    if (columns_[i].primary_key) out += " PRIMARY KEY";
    if (!columns_[i].nullable && !columns_[i].primary_key) out += " NOT NULL";
  }
  out += ")";
  return out;
}

}  // namespace kojak::db
