// Batch bytecode VM for scalar SQL expressions over columnar partitions.
//
// Byte-identity with the row-path interpreter (executor.cpp's eval_expr /
// value.cpp's numeric_binop + compare_sql) is load-bearing: every kernel
// below reproduces the exact double/int operations and NULL propagation the
// interpreter performs, including NaN comparing equal to everything,
// int-through-double comparison, and first-attained LEAST/GREATEST ties.
// Shapes with a statically ambiguous result type (or that would throw a
// per-row type diagnostic) are declined at compile time so the row path
// keeps raising its usual errors.

#include "db/sql/expr_vm.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::db::sql {

using support::EvalError;

bool like_match(std::string_view text, std::string_view pattern) {
  // Iterative matcher for SQL LIKE with '%' (any run) and '_' (single char).
  std::size_t t = 0, p = 0;
  std::size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

constexpr std::uint16_t kNoReg = 0xffff;

bool numeric_type(ValueType t) noexcept {
  return t == ValueType::kInt || t == ValueType::kDouble;
}

/// Whether compare_sql(a, b) is defined (never throws) for every non-NULL
/// value pair of these static types.
bool comparable_types(ValueType a, ValueType b) noexcept {
  if (numeric_type(a) && numeric_type(b)) return true;
  return a == b && (a == ValueType::kBool || a == ValueType::kDateTime ||
                    a == ValueType::kString);
}

/// Conservative: does this subtree contain an operation that can raise at
/// evaluation time (`/`, `%`, SQRT)? Used to decide where demand-mask
/// refinements are worth emitting.
bool can_raise(const Expr& e) {
  if (e.kind == Expr::Kind::kBinary &&
      (e.bin_op == BinOp::kDiv || e.bin_op == BinOp::kMod)) {
    return true;
  }
  if (e.kind == Expr::Kind::kFuncCall && e.func == "SQRT") return true;
  if (e.lhs && can_raise(*e.lhs)) return true;
  if (e.rhs && can_raise(*e.rhs)) return true;
  for (const auto& arg : e.args) {
    if (arg && can_raise(*arg)) return true;
  }
  return false;
}

/// Signed arithmetic through unsigned so lanes the row path never evaluates
/// (filtered rows computed eagerly by the VM) cannot trip UBSan; on the
/// lanes both paths evaluate the bit results are identical.
std::int64_t wrap_add(std::int64_t x, std::int64_t y) noexcept {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(x) +
                                   static_cast<std::uint64_t>(y));
}
std::int64_t wrap_sub(std::int64_t x, std::int64_t y) noexcept {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(x) -
                                   static_cast<std::uint64_t>(y));
}
std::int64_t wrap_mul(std::int64_t x, std::int64_t y) noexcept {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(x) *
                                   static_cast<std::uint64_t>(y));
}
std::int64_t wrap_neg(std::int64_t x) noexcept {
  return static_cast<std::int64_t>(0u - static_cast<std::uint64_t>(x));
}

bool comparison_keeps(BinOp op, int c) noexcept {
  switch (op) {
    case BinOp::kEq: return c == 0;
    case BinOp::kNe: return c != 0;
    case BinOp::kLt: return c < 0;
    case BinOp::kLe: return c <= 0;
    case BinOp::kGt: return c > 0;
    case BinOp::kGe: return c >= 0;
    default: return false;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Compiler

class ProgramBuilder {
 public:
  ProgramBuilder(std::size_t base_slot, std::span<const ValueType> column_types,
                 const ExprProgram::ConstantValueFn& constant_value)
      : base_slot_(base_slot),
        column_types_(column_types),
        constant_value_(constant_value) {}

  std::shared_ptr<const ExprProgram> build(const Expr& root) {
    const auto res = compile(root, kNoReg);
    if (!res) return nullptr;
    auto out = std::make_shared<ExprProgram>(std::move(prog_));
    out->root_reg_ = res->reg;
    out->root_type_ = res->type;
    std::sort(out->used_columns_.begin(), out->used_columns_.end());
    out->used_columns_.erase(
        std::unique(out->used_columns_.begin(), out->used_columns_.end()),
        out->used_columns_.end());
    return out;
  }

 private:
  struct Res {
    std::uint16_t reg;
    ValueType type;
  };
  using Op = ExprProgram::Op;
  using Instr = ExprProgram::Instr;

  std::optional<std::uint16_t> new_reg(ValueType t) {
    if (prog_.reg_types_.size() >= kNoReg) return std::nullopt;
    prog_.reg_types_.push_back(t);
    return static_cast<std::uint16_t>(prog_.reg_types_.size() - 1);
  }

  Instr& emit(Op op, std::uint16_t dest) {
    prog_.instrs_.push_back(Instr{});
    Instr& ins = prog_.instrs_.back();
    ins.op = op;
    ins.dest = dest;
    return ins;
  }

  /// Canonical all-NULL register: compile-time NULL folds land here. Owns
  /// zeroed int/double/string lanes so any consumer can copy through it.
  std::optional<Res> null_reg() {
    if (null_reg_ == kNoReg) {
      const auto reg = new_reg(ValueType::kNull);
      if (!reg) return std::nullopt;
      null_reg_ = *reg;
      emit(Op::kLoadConst, null_reg_);  // payload kNoPayload = NULL broadcast
    }
    return Res{null_reg_, ValueType::kNull};
  }

  /// Demand-mask seed (the caller's `demand` bitmap), created on first use.
  std::optional<std::uint16_t> seed_mask() {
    if (seed_mask_ == kNoReg) {
      const auto reg = new_reg(ValueType::kBool);
      if (!reg) return std::nullopt;
      seed_mask_ = *reg;
      emit(Op::kMaskSeed, seed_mask_);
    }
    return seed_mask_;
  }

  std::optional<std::uint16_t> mask_or_seed(std::uint16_t m) {
    if (m != kNoReg) return m;
    return seed_mask();
  }

  std::optional<std::uint16_t> refine_mask(Op op, std::uint16_t parent,
                                           std::uint16_t over) {
    const auto base = mask_or_seed(parent);
    if (!base) return std::nullopt;
    const auto reg = new_reg(ValueType::kBool);
    if (!reg) return std::nullopt;
    Instr& ins = emit(op, *reg);
    ins.a = *base;
    ins.b = over;
    return reg;
  }

  /// Compile-time value of a constant expression (literal, param, scalar
  /// subquery); nullopt for "unknown" (recorded as NULL-typed).
  std::optional<Value> constant_of(const Expr& e) {
    if (e.kind == Expr::Kind::kLiteral) return e.literal;
    if (constant_value_) return constant_value_(e);
    return std::nullopt;
  }

  /// Registers a runtime-constant slot for `e` and loads it. NULL-typed
  /// constants fold to the null register but still claim a slot when the
  /// runtime value could change (params/subqueries): bind_constants then
  /// declines the execution whose value stopped being NULL.
  std::optional<Res> const_slot_reg(const Expr& e) {
    auto value = constant_of(e);
    Value v = value ? std::move(*value) : Value::null();
    const ValueType type = v.type();
    ExprProgram::ConstSlot slot;
    slot.expr = &e;
    slot.type = type;
    if (e.kind == Expr::Kind::kLiteral) {
      slot.literal = v;
      slot.literal_baked = true;
    }
    if (type == ValueType::kNull) {
      if (e.kind != Expr::Kind::kLiteral) {
        prog_.consts_.push_back(std::move(slot));  // validation-only slot
      }
      return null_reg();
    }
    prog_.consts_.push_back(std::move(slot));
    const std::uint32_t slot_index =
        static_cast<std::uint32_t>(prog_.consts_.size() - 1);
    const auto reg = new_reg(type);
    if (!reg) return std::nullopt;
    Instr& ins = emit(Op::kLoadConst, *reg);
    ins.payload = slot_index;
    return Res{*reg, type};
  }

  /// Registers a constant slot without loading it into a register (IN-list
  /// members, ROUND digits). Returns the slot index and its recorded type.
  std::optional<std::pair<std::uint32_t, ValueType>> const_slot_only(
      const Expr& e) {
    auto value = constant_of(e);
    Value v = value ? std::move(*value) : Value::null();
    ExprProgram::ConstSlot slot;
    slot.expr = &e;
    slot.type = v.type();
    if (e.kind == Expr::Kind::kLiteral) {
      slot.literal = std::move(v);
      slot.literal_baked = true;
    }
    prog_.consts_.push_back(std::move(slot));
    return std::pair{static_cast<std::uint32_t>(prog_.consts_.size() - 1),
                     prog_.consts_.back().type};
  }

  static bool is_constant_expr(const Expr& e) {
    return e.kind == Expr::Kind::kLiteral || e.kind == Expr::Kind::kParam ||
           e.kind == Expr::Kind::kSubquery;
  }

  std::optional<Res> emit_unary(Op op, const Res& a, ValueType out_type,
                                std::uint16_t mask = kNoReg) {
    const auto reg = new_reg(out_type);
    if (!reg) return std::nullopt;
    Instr& ins = emit(op, *reg);
    ins.a = a.reg;
    ins.at = a.type;
    ins.m = mask;
    return Res{*reg, out_type};
  }

  std::optional<Res> emit_binary(Op op, const Res& a, const Res& b,
                                 ValueType out_type,
                                 std::uint16_t mask = kNoReg) {
    const auto reg = new_reg(out_type);
    if (!reg) return std::nullopt;
    Instr& ins = emit(op, *reg);
    ins.a = a.reg;
    ins.b = b.reg;
    ins.at = a.type;
    ins.bt = b.type;
    ins.m = mask;
    return Res{*reg, out_type};
  }

  // -- expression dispatch --------------------------------------------------

  std::optional<Res> compile(const Expr& e, std::uint16_t mask) {
    switch (e.kind) {
      case Expr::Kind::kLiteral:
      case Expr::Kind::kParam:
      case Expr::Kind::kSubquery:
        return const_slot_reg(e);
      case Expr::Kind::kColumnRef:
        return compile_column(e);
      case Expr::Kind::kUnary:
        return compile_unary(e, mask);
      case Expr::Kind::kIsNull:
        return compile_is_null(e, mask);
      case Expr::Kind::kLike:
        return compile_like(e, mask);
      case Expr::Kind::kInList:
        return compile_in_list(e, mask);
      case Expr::Kind::kFuncCall:
        return compile_func(e, mask);
      case Expr::Kind::kBinary:
        return compile_binary(e, mask);
      case Expr::Kind::kAliasRef:
      default:
        return std::nullopt;  // not a per-row scalar over the base table
    }
  }

  std::optional<Res> compile_column(const Expr& e) {
    if (e.resolved_slot < base_slot_) return std::nullopt;
    const std::size_t col = e.resolved_slot - base_slot_;
    if (col >= column_types_.size()) return std::nullopt;
    const ValueType type = column_types_[col];
    const auto reg = new_reg(type);
    if (!reg) return std::nullopt;
    Instr& ins = emit(Op::kLoadColumn, *reg);
    ins.payload = static_cast<std::uint32_t>(col);
    ins.at = type;
    prog_.used_columns_.push_back(col);
    return Res{*reg, type};
  }

  std::optional<Res> compile_unary(const Expr& e, std::uint16_t mask) {
    const auto a = compile(*e.lhs, mask);
    if (!a) return std::nullopt;
    if (a->type == ValueType::kNull) return null_reg();
    if (e.un_op == UnOp::kNot) {
      if (a->type != ValueType::kBool) return std::nullopt;
      return emit_unary(Op::kNot, *a, ValueType::kBool);
    }
    if (a->type == ValueType::kInt) {
      return emit_unary(Op::kNegI, *a, ValueType::kInt);
    }
    if (a->type == ValueType::kDouble) {
      return emit_unary(Op::kNegD, *a, ValueType::kDouble);
    }
    return std::nullopt;  // -bool / -datetime / -string throw per row
  }

  std::optional<Res> compile_is_null(const Expr& e, std::uint16_t mask) {
    const auto a = compile(*e.lhs, mask);
    if (!a) return std::nullopt;
    const auto res = emit_unary(Op::kIsNull, *a, ValueType::kBool);
    if (res) prog_.instrs_.back().flag = e.negated;
    return res;
  }

  std::optional<Res> compile_like(const Expr& e, std::uint16_t mask) {
    const auto a = compile(*e.lhs, mask);
    if (!a) return std::nullopt;
    const auto b = compile(*e.rhs, mask);
    if (!b) return std::nullopt;
    if (a->type == ValueType::kNull || b->type == ValueType::kNull) {
      return null_reg();
    }
    if (a->type != ValueType::kString || b->type != ValueType::kString) {
      return std::nullopt;
    }
    const auto res = emit_binary(Op::kLike, *a, *b, ValueType::kBool);
    if (res) prog_.instrs_.back().flag = e.negated;
    return res;
  }

  std::optional<Res> compile_in_list(const Expr& e, std::uint16_t mask) {
    const auto needle = compile(*e.lhs, mask);
    if (!needle) return std::nullopt;
    if (needle->type == ValueType::kNull) return null_reg();
    // Members must be constants: the interpreter stops scanning at the first
    // match, and constant members are the only shape whose (non-)evaluation
    // is unobservable. Types must be comparable so compare_sql can't throw.
    std::vector<std::uint32_t> slots;
    slots.reserve(e.args.size());
    for (const auto& arg : e.args) {
      if (arg == nullptr || !is_constant_expr(*arg)) return std::nullopt;
      const auto slot = const_slot_only(*arg);
      if (!slot) return std::nullopt;
      if (slot->second != ValueType::kNull &&
          !comparable_types(needle->type, slot->second)) {
        return std::nullopt;
      }
      slots.push_back(slot->first);
    }
    prog_.slot_lists_.push_back(std::move(slots));
    const auto res = emit_unary(Op::kInList, *needle, ValueType::kBool);
    if (!res) return std::nullopt;
    prog_.instrs_.back().payload =
        static_cast<std::uint32_t>(prog_.slot_lists_.size() - 1);
    prog_.instrs_.back().flag = e.negated;
    return res;
  }

  std::optional<Res> compile_func(const Expr& e, std::uint16_t mask) {
    if (e.star_arg || e.distinct_arg) return std::nullopt;
    if (e.func == "COALESCE") return compile_coalesce(e, mask);
    if (e.func == "IIF") return compile_iif(e, mask);
    if (e.func == "NULLIF") return compile_nullif(e, mask);
    if (e.func == "LEAST" || e.func == "GREATEST") {
      return compile_extremum(e, mask);
    }
    if (e.args.empty() || e.args[0] == nullptr) return std::nullopt;
    const auto a = compile(*e.args[0], mask);
    if (!a) return std::nullopt;
    if (a->type == ValueType::kNull) return null_reg();
    if (e.func == "ABS") {
      if (a->type == ValueType::kInt) {
        return emit_unary(Op::kAbsI, *a, ValueType::kInt);
      }
      if (a->type == ValueType::kDouble) {
        return emit_unary(Op::kAbsD, *a, ValueType::kDouble);
      }
      return std::nullopt;
    }
    if (e.func == "SQRT") {
      if (!numeric_type(a->type)) return std::nullopt;
      const auto m = mask_or_seed(mask);
      if (!m) return std::nullopt;
      return emit_unary(Op::kSqrt, *a, ValueType::kDouble, *m);
    }
    if (e.func == "FLOOR" || e.func == "CEIL") {
      if (!numeric_type(a->type)) return std::nullopt;
      return emit_unary(e.func == "FLOOR" ? Op::kFloorD : Op::kCeilD, *a,
                        ValueType::kDouble);
    }
    if (e.func == "ROUND") {
      if (!numeric_type(a->type)) return std::nullopt;
      std::uint32_t digits_slot = ExprProgram::kNoPayload;
      if (e.args.size() > 1 && e.args[1] != nullptr) {
        // The digits argument is evaluated per matching row; only a non-NULL
        // numeric literal is guaranteed to behave identically.
        const Expr& d = *e.args[1];
        if (d.kind != Expr::Kind::kLiteral || !d.literal.is_numeric()) {
          return std::nullopt;
        }
        const auto slot = const_slot_only(d);
        if (!slot) return std::nullopt;
        digits_slot = slot->first;
      }
      const auto res = emit_unary(Op::kRound, *a, ValueType::kDouble);
      if (res) prog_.instrs_.back().payload = digits_slot;
      return res;
    }
    if (e.func == "LENGTH") {
      if (a->type != ValueType::kString) return std::nullopt;
      return emit_unary(Op::kLength, *a, ValueType::kInt);
    }
    if (e.func == "UPPER" || e.func == "LOWER") {
      if (a->type != ValueType::kString) return std::nullopt;
      return emit_unary(e.func == "UPPER" ? Op::kUpper : Op::kLower, *a,
                        ValueType::kString);
    }
    return std::nullopt;
  }

  std::optional<Res> compile_coalesce(const Expr& e, std::uint16_t mask) {
    // Arguments evaluate left to right, each demanded only where everything
    // before it was NULL (the interpreter stops at the first non-NULL).
    std::optional<Res> merged;
    std::uint16_t arm_mask = mask;
    for (const auto& arg : e.args) {
      if (arg == nullptr) return std::nullopt;
      if (merged && can_raise(*arg)) {
        const auto m =
            refine_mask(Op::kMaskAndInvalid, arm_mask, merged->reg);
        if (!m) return std::nullopt;
        arm_mask = *m;
      }
      const auto a = compile(*arg, merged ? arm_mask : mask);
      if (!a) return std::nullopt;
      if (a->type == ValueType::kNull) continue;  // contributes nothing
      if (!merged) {
        merged = a;
        continue;
      }
      if (a->type != merged->type) return std::nullopt;  // dynamic result type
      merged = emit_binary(Op::kMergeValid, *merged, *a, merged->type);
      if (!merged) return std::nullopt;
    }
    if (!merged) return null_reg();
    return merged;
  }

  std::optional<Res> compile_iif(const Expr& e, std::uint16_t mask) {
    if (e.args.size() != 3) return std::nullopt;
    const auto cond = compile(*e.args[0], mask);
    if (!cond) return std::nullopt;
    if (cond->type == ValueType::kNull) {
      // NULL condition always takes the else arm; the then arm is never
      // evaluated by the interpreter, so it is not compiled either.
      return compile(*e.args[2], mask);
    }
    if (cond->type != ValueType::kBool) return std::nullopt;
    std::uint16_t then_mask = mask;
    if (can_raise(*e.args[1])) {
      const auto m = refine_mask(Op::kMaskAndTrue, mask, cond->reg);
      if (!m) return std::nullopt;
      then_mask = *m;
    }
    const auto then_arm = compile(*e.args[1], then_mask);
    if (!then_arm) return std::nullopt;
    std::uint16_t else_mask = mask;
    if (can_raise(*e.args[2])) {
      const auto m = refine_mask(Op::kMaskAndNotTrue, mask, cond->reg);
      if (!m) return std::nullopt;
      else_mask = *m;
    }
    const auto else_arm = compile(*e.args[2], else_mask);
    if (!else_arm) return std::nullopt;
    ValueType out = then_arm->type;
    if (out == ValueType::kNull) out = else_arm->type;
    if (else_arm->type != ValueType::kNull && else_arm->type != out) {
      return std::nullopt;  // mixed arm types = dynamic result type
    }
    if (out == ValueType::kNull) return null_reg();
    const auto reg = new_reg(out);
    if (!reg) return std::nullopt;
    Instr& ins = emit(Op::kIif, *reg);
    ins.a = cond->reg;
    ins.b = then_arm->reg;
    ins.c = else_arm->reg;
    return Res{*reg, out};
  }

  std::optional<Res> compile_nullif(const Expr& e, std::uint16_t mask) {
    if (e.args.size() != 2) return std::nullopt;
    const auto a = compile(*e.args[0], mask);
    if (!a) return std::nullopt;
    const auto b = compile(*e.args[1], mask);
    if (!b) return std::nullopt;
    if (a->type == ValueType::kNull) return null_reg();
    if (b->type == ValueType::kNull) return a;  // compare is never 0
    if (!comparable_types(a->type, b->type)) return std::nullopt;
    return emit_binary(Op::kNullIf, *a, *b, a->type);
  }

  std::optional<Res> compile_extremum(const Expr& e, std::uint16_t mask) {
    const bool want_min = e.func == "LEAST";
    std::vector<Res> args;
    for (const auto& arg : e.args) {
      if (arg == nullptr) return std::nullopt;
      const auto a = compile(*arg, mask);  // interpreter evaluates all args
      if (!a) return std::nullopt;
      if (a->type == ValueType::kNull) continue;  // NULLs are skipped
      args.push_back(*a);
    }
    if (args.empty()) return null_reg();
    const ValueType type = args[0].type;
    for (const auto& a : args) {
      if (a.type != type) return std::nullopt;  // dynamic result type
    }
    if (args.size() == 1) return args[0];
    std::vector<std::uint16_t> regs;
    regs.reserve(args.size());
    for (const auto& a : args) regs.push_back(a.reg);
    prog_.arg_lists_.push_back(std::move(regs));
    const auto reg = new_reg(type);
    if (!reg) return std::nullopt;
    Instr& ins = emit(Op::kExtremum, *reg);
    ins.at = type;
    ins.payload = static_cast<std::uint32_t>(prog_.arg_lists_.size() - 1);
    ins.flag = want_min;
    return Res{*reg, type};
  }

  std::optional<Res> compile_binary(const Expr& e, std::uint16_t mask) {
    if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
      return compile_logic(e, mask);
    }
    const auto a = compile(*e.lhs, mask);
    if (!a) return std::nullopt;
    const auto b = compile(*e.rhs, mask);
    if (!b) return std::nullopt;
    switch (e.bin_op) {
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul:
      case BinOp::kDiv:
      case BinOp::kMod:
        return compile_arith(e.bin_op, *a, *b, mask);
      default:
        break;
    }
    // Comparison: NULL operands fold (compare_sql is unknown), numeric
    // pairs compare through double, same-type bool/datetime/string compare
    // natively, anything else throws per row.
    if (a->type == ValueType::kNull || b->type == ValueType::kNull) {
      return null_reg();
    }
    if (!comparable_types(a->type, b->type)) return std::nullopt;
    const auto res = emit_binary(Op::kCmp, *a, *b, ValueType::kBool);
    if (res) prog_.instrs_.back().cmp = e.bin_op;
    return res;
  }

  std::optional<Res> compile_logic(const Expr& e, std::uint16_t mask) {
    const bool is_and = e.bin_op == BinOp::kAnd;
    const auto a = compile(*e.lhs, mask);
    if (!a) return std::nullopt;
    if (a->type != ValueType::kBool && a->type != ValueType::kNull) {
      return std::nullopt;
    }
    // The interpreter skips the rhs when the lhs already decides (non-NULL
    // false for AND, non-NULL true for OR) — refine the rhs demand mask so
    // a throwing rhs only raises where the interpreter would have.
    std::uint16_t rhs_mask = mask;
    if (can_raise(*e.rhs)) {
      const auto m = refine_mask(
          is_and ? Op::kMaskAndNotFalse : Op::kMaskAndNotTrue, mask, a->reg);
      if (!m) return std::nullopt;
      rhs_mask = *m;
    }
    const auto b = compile(*e.rhs, rhs_mask);
    if (!b) return std::nullopt;
    if (b->type != ValueType::kBool && b->type != ValueType::kNull) {
      return std::nullopt;
    }
    return emit_binary(is_and ? Op::kAnd : Op::kOr, *a, *b, ValueType::kBool);
  }

  std::optional<Res> compile_arith(BinOp op, const Res& a, const Res& b,
                                   std::uint16_t mask) {
    // numeric_binop checks NULL before anything else, so a NULL operand
    // folds even against a non-numeric sibling.
    if (a.type == ValueType::kNull || b.type == ValueType::kNull) {
      return null_reg();
    }
    if (op == BinOp::kAdd && a.type == ValueType::kString &&
        b.type == ValueType::kString) {
      return emit_binary(Op::kConcat, a, b, ValueType::kString);
    }
    if (!numeric_type(a.type) || !numeric_type(b.type)) return std::nullopt;
    const bool both_int =
        a.type == ValueType::kInt && b.type == ValueType::kInt;
    if (both_int && op != BinOp::kDiv) {
      switch (op) {
        case BinOp::kAdd: return emit_binary(Op::kAddI, a, b, ValueType::kInt);
        case BinOp::kSub: return emit_binary(Op::kSubI, a, b, ValueType::kInt);
        case BinOp::kMul: return emit_binary(Op::kMulI, a, b, ValueType::kInt);
        case BinOp::kMod: {
          const auto m = mask_or_seed(mask);
          if (!m) return std::nullopt;
          return emit_binary(Op::kModI, a, b, ValueType::kInt, *m);
        }
        default: return std::nullopt;
      }
    }
    switch (op) {
      case BinOp::kAdd: return emit_binary(Op::kAddD, a, b, ValueType::kDouble);
      case BinOp::kSub: return emit_binary(Op::kSubD, a, b, ValueType::kDouble);
      case BinOp::kMul: return emit_binary(Op::kMulD, a, b, ValueType::kDouble);
      case BinOp::kDiv: {
        const auto m = mask_or_seed(mask);
        if (!m) return std::nullopt;
        return emit_binary(Op::kDivD, a, b, ValueType::kDouble, *m);
      }
      case BinOp::kMod: {
        const auto m = mask_or_seed(mask);
        if (!m) return std::nullopt;
        return emit_binary(Op::kModD, a, b, ValueType::kDouble, *m);
      }
      default: return std::nullopt;
    }
  }

  std::size_t base_slot_;
  std::span<const ValueType> column_types_;
  const ExprProgram::ConstantValueFn& constant_value_;
  ExprProgram prog_;
  std::uint16_t null_reg_ = kNoReg;
  std::uint16_t seed_mask_ = kNoReg;
};

std::shared_ptr<const ExprProgram> ExprProgram::compile(
    const Expr& root, std::size_t base_slot,
    std::span<const ValueType> column_types,
    const ConstantValueFn& constant_value) {
  ProgramBuilder builder(base_slot, column_types, constant_value);
  return builder.build(root);
}

std::optional<ExprProgram::Bound> ExprProgram::bind_constants(
    const std::function<Value(const Expr&)>& eval) const {
  Bound out;
  out.reserve(consts_.size());
  for (const auto& slot : consts_) {
    Value v = slot.literal_baked ? slot.literal : eval(*slot.expr);
    if (!v.is_null() && v.type() != slot.type) return std::nullopt;
    out.push_back(std::move(v));
  }
  return out;
}

std::shared_ptr<const ExprProgram> ExprProgram::remapped(
    const ExprRemap& map) const {
  auto out = std::make_shared<ExprProgram>(*this);
  for (auto& slot : out->consts_) {
    if (slot.expr == nullptr) continue;
    const auto it = map.find(slot.expr);
    if (it == map.end()) return nullptr;
    slot.expr = it->second;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Interpreter

namespace {

/// Numeric lane read: int lanes promote through double exactly like
/// Value::as_double does on the row path.
inline double lane_num(const ExprProgram::Scratch::View& v, ValueType t,
                       std::size_t l) noexcept {
  return t == ValueType::kDouble ? v.d[l] : static_cast<double>(v.i[l]);
}

/// compare_sql for two same-class lanes; `at`/`bt` pre-validated comparable.
inline int lane_cmp(const ExprProgram::Scratch::View& a, ValueType at,
                    const ExprProgram::Scratch::View& b, ValueType bt,
                    std::size_t l) {
  if (numeric_type(at)) {
    const double x = lane_num(a, at, l);
    const double y = lane_num(b, bt, l);
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  switch (at) {
    case ValueType::kBool:
      return static_cast<int>(a.i[l] != 0) - static_cast<int>(b.i[l] != 0);
    case ValueType::kDateTime:
      return a.i[l] < b.i[l] ? -1 : (a.i[l] > b.i[l] ? 1 : 0);
    case ValueType::kString: {
      const int c = a.s[l].compare(b.s[l]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;
  }
}

/// compare_sql of a lane against a bound constant Value (IN-list members);
/// the constant's runtime type equals its recorded (comparable) type.
inline bool lane_equals_const(const ExprProgram::Scratch::View& a, ValueType at,
                              std::size_t l, const Value& v) {
  if (numeric_type(at)) return lane_num(a, at, l) == v.as_double();
  switch (at) {
    case ValueType::kBool:
      return (a.i[l] != 0) == v.as_bool();
    case ValueType::kDateTime:
      return a.i[l] == v.as_datetime();
    case ValueType::kString:
      return a.s[l] == v.as_string();
    default:
      return false;
  }
}

}  // namespace

ExprProgram::Result ExprProgram::run(Scratch& scratch, const Bound& bound,
                                     std::span<const Table::ColumnSlice> columns,
                                     const std::uint8_t* demand,
                                     std::size_t begin, std::size_t end) const {
  const std::size_t n = end - begin;
  if (scratch.views.size() != reg_types_.size()) {
    scratch.views.assign(reg_types_.size(), {});
    scratch.bufs.clear();
    scratch.bufs.resize(reg_types_.size());
    scratch.const_tag = nullptr;
  }
  if (scratch.ones.empty()) scratch.ones.assign(kBatch, 1);
  const bool fill_consts = scratch.const_tag != static_cast<const void*>(&bound);
  scratch.const_tag = &bound;

  const auto own_i = [&](std::uint16_t r) {
    auto& buf = scratch.bufs[r].i;
    if (buf.empty()) buf.resize(kBatch);
    scratch.views[r].i = buf.data();
    return buf.data();
  };
  const auto own_d = [&](std::uint16_t r) {
    auto& buf = scratch.bufs[r].d;
    if (buf.empty()) buf.resize(kBatch);
    scratch.views[r].d = buf.data();
    return buf.data();
  };
  const auto own_s = [&](std::uint16_t r) {
    auto& buf = scratch.bufs[r].s;
    if (buf.empty()) buf.resize(kBatch);
    scratch.views[r].s = buf.data();
    return buf.data();
  };
  const auto own_v = [&](std::uint16_t r) {
    auto& buf = scratch.bufs[r].valid;
    if (buf.empty()) buf.resize(kBatch);
    scratch.views[r].valid = buf.data();
    return buf.data();
  };

  for (const Instr& ins : instrs_) {
    const Scratch::View a =
        ins.a != kNoReg ? scratch.views[ins.a] : Scratch::View{};
    const Scratch::View b =
        ins.b != kNoReg ? scratch.views[ins.b] : Scratch::View{};
    switch (ins.op) {
      case Op::kLoadColumn: {
        const Table::ColumnSlice& cs = columns[ins.payload];
        Scratch::View& v = scratch.views[ins.dest];
        v.i = cs.ints != nullptr ? cs.ints + begin : nullptr;
        v.d = cs.reals != nullptr ? cs.reals + begin : nullptr;
        v.s = cs.strs != nullptr ? cs.strs + begin : nullptr;
        v.valid = cs.valid + begin;
        break;
      }
      case Op::kLoadConst: {
        if (!fill_consts && scratch.views[ins.dest].valid != nullptr) break;
        std::uint8_t* valid = own_v(ins.dest);
        if (ins.payload == kNoPayload) {  // canonical NULL register
          std::int64_t* di = own_i(ins.dest);
          double* dd = own_d(ins.dest);
          std::string* ds = own_s(ins.dest);
          for (std::size_t l = 0; l < kBatch; ++l) {
            valid[l] = 0;
            di[l] = 0;
            dd[l] = 0.0;
            ds[l].clear();
          }
          break;
        }
        const Value& v = bound[ins.payload];
        const ValueType type = consts_[ins.payload].type;
        if (v.is_null()) {
          std::fill_n(valid, kBatch, std::uint8_t{0});
          // Zero whichever lane the type owns so copies through it are
          // deterministic.
          if (type == ValueType::kDouble) {
            std::fill_n(own_d(ins.dest), kBatch, 0.0);
          } else if (type == ValueType::kString) {
            std::string* ds = own_s(ins.dest);
            for (std::size_t l = 0; l < kBatch; ++l) ds[l].clear();
          } else {
            std::fill_n(own_i(ins.dest), kBatch, std::int64_t{0});
          }
          break;
        }
        std::fill_n(valid, kBatch, std::uint8_t{1});
        switch (type) {
          case ValueType::kBool:
            std::fill_n(own_i(ins.dest), kBatch,
                        static_cast<std::int64_t>(v.as_bool() ? 1 : 0));
            break;
          case ValueType::kInt:
            std::fill_n(own_i(ins.dest), kBatch, v.as_int());
            break;
          case ValueType::kDateTime:
            std::fill_n(own_i(ins.dest), kBatch, v.as_datetime());
            break;
          case ValueType::kDouble:
            std::fill_n(own_d(ins.dest), kBatch, v.as_double());
            break;
          case ValueType::kString: {
            std::string* ds = own_s(ins.dest);
            for (std::size_t l = 0; l < kBatch; ++l) ds[l] = v.as_string();
            break;
          }
          default:
            break;
        }
        break;
      }
      case Op::kNegI: {
        std::int64_t* di = own_i(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        for (std::size_t l = 0; l < n; ++l) {
          di[l] = wrap_neg(a.i[l]);
          dv[l] = a.valid[l];
        }
        break;
      }
      case Op::kNegD: {
        double* dd = own_d(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        for (std::size_t l = 0; l < n; ++l) {
          dd[l] = -a.d[l];
          dv[l] = a.valid[l];
        }
        break;
      }
      case Op::kNot: {
        std::int64_t* di = own_i(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        for (std::size_t l = 0; l < n; ++l) {
          di[l] = a.i[l] != 0 ? 0 : 1;
          dv[l] = a.valid[l];
        }
        break;
      }
      case Op::kAddI:
      case Op::kSubI:
      case Op::kMulI: {
        std::int64_t* di = own_i(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        for (std::size_t l = 0; l < n; ++l) {
          const std::int64_t x = a.i[l];
          const std::int64_t y = b.i[l];
          di[l] = ins.op == Op::kAddI   ? wrap_add(x, y)
                  : ins.op == Op::kSubI ? wrap_sub(x, y)
                                        : wrap_mul(x, y);
          dv[l] = a.valid[l] & b.valid[l];
        }
        break;
      }
      case Op::kModI: {
        std::int64_t* di = own_i(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        const std::uint8_t* m = scratch.views[ins.m].valid;
        for (std::size_t l = 0; l < n; ++l) {
          const std::uint8_t v = a.valid[l] & b.valid[l];
          const std::int64_t y = b.i[l];
          if (y == 0) {
            if (v != 0 && m[l] != 0) throw EvalError("modulo by zero");
            di[l] = 0;
          } else if (y == -1) {
            di[l] = 0;  // matches x % -1 without the INT64_MIN trap
          } else {
            di[l] = a.i[l] % y;
          }
          dv[l] = v;
        }
        break;
      }
      case Op::kAddD:
      case Op::kSubD:
      case Op::kMulD: {
        double* dd = own_d(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        for (std::size_t l = 0; l < n; ++l) {
          const double x = lane_num(a, ins.at, l);
          const double y = lane_num(b, ins.bt, l);
          dd[l] = ins.op == Op::kAddD   ? x + y
                  : ins.op == Op::kSubD ? x - y
                                        : x * y;
          dv[l] = a.valid[l] & b.valid[l];
        }
        break;
      }
      case Op::kDivD:
      case Op::kModD: {
        double* dd = own_d(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        const std::uint8_t* m = scratch.views[ins.m].valid;
        const bool is_div = ins.op == Op::kDivD;
        for (std::size_t l = 0; l < n; ++l) {
          const std::uint8_t v = a.valid[l] & b.valid[l];
          const double x = lane_num(a, ins.at, l);
          const double y = lane_num(b, ins.bt, l);
          if (y == 0.0) {
            if (v != 0 && m[l] != 0) {
              throw EvalError(is_div ? "division by zero" : "modulo by zero");
            }
            dd[l] = 0.0;
          } else {
            dd[l] = is_div ? x / y : std::fmod(x, y);
          }
          dv[l] = v;
        }
        break;
      }
      case Op::kConcat: {
        std::string* ds = own_s(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        for (std::size_t l = 0; l < n; ++l) {
          const std::uint8_t v = a.valid[l] & b.valid[l];
          if (v != 0) {
            ds[l] = a.s[l];
            ds[l] += b.s[l];
          } else {
            ds[l].clear();
          }
          dv[l] = v;
        }
        break;
      }
      case Op::kCmp: {
        std::int64_t* di = own_i(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        for (std::size_t l = 0; l < n; ++l) {
          const std::uint8_t v = a.valid[l] & b.valid[l];
          di[l] = v != 0 && comparison_keeps(
                                ins.cmp, lane_cmp(a, ins.at, b, ins.bt, l))
                      ? 1
                      : 0;
          dv[l] = v;
        }
        break;
      }
      case Op::kAnd: {
        std::int64_t* di = own_i(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        for (std::size_t l = 0; l < n; ++l) {
          const bool a_false = a.valid[l] != 0 && a.i[l] == 0;
          const bool b_false = b.valid[l] != 0 && b.i[l] == 0;
          if (a_false || b_false) {
            di[l] = 0;
            dv[l] = 1;
          } else if (a.valid[l] == 0 || b.valid[l] == 0) {
            di[l] = 0;
            dv[l] = 0;
          } else {
            di[l] = 1;
            dv[l] = 1;
          }
        }
        break;
      }
      case Op::kOr: {
        std::int64_t* di = own_i(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        for (std::size_t l = 0; l < n; ++l) {
          const bool a_true = a.valid[l] != 0 && a.i[l] != 0;
          const bool b_true = b.valid[l] != 0 && b.i[l] != 0;
          if (a_true || b_true) {
            di[l] = 1;
            dv[l] = 1;
          } else if (a.valid[l] == 0 || b.valid[l] == 0) {
            di[l] = 0;
            dv[l] = 0;
          } else {
            di[l] = 0;
            dv[l] = 1;
          }
        }
        break;
      }
      case Op::kIsNull: {
        std::int64_t* di = own_i(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        for (std::size_t l = 0; l < n; ++l) {
          const bool null = a.valid[l] == 0;
          di[l] = (ins.flag ? !null : null) ? 1 : 0;
          dv[l] = 1;
        }
        break;
      }
      case Op::kLike: {
        std::int64_t* di = own_i(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        for (std::size_t l = 0; l < n; ++l) {
          const std::uint8_t v = a.valid[l] & b.valid[l];
          if (v != 0) {
            const bool match = like_match(a.s[l], b.s[l]);
            di[l] = (ins.flag ? !match : match) ? 1 : 0;
          } else {
            di[l] = 0;
          }
          dv[l] = v;
        }
        break;
      }
      case Op::kInList: {
        std::int64_t* di = own_i(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        const auto& slots = slot_lists_[ins.payload];
        for (std::size_t l = 0; l < n; ++l) {
          if (a.valid[l] == 0) {
            di[l] = 0;
            dv[l] = 0;
            continue;
          }
          bool saw_null = false;
          bool matched = false;
          for (const std::uint32_t slot : slots) {
            const Value& v = bound[slot];
            if (v.is_null()) {
              saw_null = true;
              continue;
            }
            if (lane_equals_const(a, ins.at, l, v)) {
              matched = true;
              break;
            }
          }
          if (matched) {
            di[l] = ins.flag ? 0 : 1;
            dv[l] = 1;
          } else if (saw_null) {
            di[l] = 0;
            dv[l] = 0;
          } else {
            di[l] = ins.flag ? 1 : 0;
            dv[l] = 1;
          }
        }
        break;
      }
      case Op::kIif:
      case Op::kMergeValid: {
        const Scratch::View c =
            ins.op == Op::kIif ? scratch.views[ins.c] : Scratch::View{};
        const ValueType type = reg_types_[ins.dest];
        std::uint8_t* dv = own_v(ins.dest);
        std::int64_t* di = nullptr;
        double* dd = nullptr;
        std::string* ds = nullptr;
        if (type == ValueType::kDouble) {
          dd = own_d(ins.dest);
        } else if (type == ValueType::kString) {
          ds = own_s(ins.dest);
        } else {
          di = own_i(ins.dest);
        }
        for (std::size_t l = 0; l < n; ++l) {
          const Scratch::View& src =
              ins.op == Op::kIif
                  ? ((a.valid[l] != 0 && a.i[l] != 0) ? b : c)
                  : (a.valid[l] != 0 ? a : b);
          dv[l] = src.valid[l];
          if (dd != nullptr) {
            dd[l] = src.d != nullptr ? src.d[l] : 0.0;
          } else if (ds != nullptr) {
            ds[l] = src.s != nullptr ? src.s[l] : std::string();
          } else {
            di[l] = src.i != nullptr ? src.i[l] : 0;
          }
        }
        break;
      }
      case Op::kNullIf: {
        const ValueType type = reg_types_[ins.dest];
        std::uint8_t* dv = own_v(ins.dest);
        std::int64_t* di = nullptr;
        double* dd = nullptr;
        std::string* ds = nullptr;
        if (type == ValueType::kDouble) {
          dd = own_d(ins.dest);
        } else if (type == ValueType::kString) {
          ds = own_s(ins.dest);
        } else {
          di = own_i(ins.dest);
        }
        for (std::size_t l = 0; l < n; ++l) {
          std::uint8_t v = a.valid[l];
          if (v != 0 && b.valid[l] != 0 &&
              lane_cmp(a, ins.at, b, ins.bt, l) == 0) {
            v = 0;
          }
          dv[l] = v;
          if (dd != nullptr) {
            dd[l] = a.d != nullptr ? a.d[l] : 0.0;
          } else if (ds != nullptr) {
            ds[l] = a.s != nullptr ? a.s[l] : std::string();
          } else {
            di[l] = a.i != nullptr ? a.i[l] : 0;
          }
        }
        break;
      }
      case Op::kExtremum: {
        const auto& regs = arg_lists_[ins.payload];
        const ValueType type = ins.at;
        std::uint8_t* dv = own_v(ins.dest);
        std::int64_t* di = nullptr;
        double* dd = nullptr;
        std::string* ds = nullptr;
        if (type == ValueType::kDouble) {
          dd = own_d(ins.dest);
        } else if (type == ValueType::kString) {
          ds = own_s(ins.dest);
        } else {
          di = own_i(ins.dest);
        }
        for (std::size_t l = 0; l < n; ++l) {
          const Scratch::View* best = nullptr;
          for (const std::uint16_t r : regs) {
            const Scratch::View& arg = scratch.views[r];
            if (arg.valid[l] == 0) continue;  // NULL-skipping extrema
            if (best == nullptr) {
              best = &arg;
              continue;
            }
            const int cmp = lane_cmp(arg, type, *best, type, l);
            if (ins.flag ? cmp < 0 : cmp > 0) best = &arg;
          }
          if (best == nullptr) {
            dv[l] = 0;
            if (dd != nullptr) {
              dd[l] = 0.0;
            } else if (ds != nullptr) {
              ds[l].clear();
            } else {
              di[l] = 0;
            }
            continue;
          }
          dv[l] = 1;
          if (dd != nullptr) {
            dd[l] = best->d[l];
          } else if (ds != nullptr) {
            ds[l] = best->s[l];
          } else {
            di[l] = best->i[l];
          }
        }
        break;
      }
      case Op::kAbsI: {
        std::int64_t* di = own_i(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        for (std::size_t l = 0; l < n; ++l) {
          di[l] = a.i[l] < 0 ? wrap_neg(a.i[l]) : a.i[l];
          dv[l] = a.valid[l];
        }
        break;
      }
      case Op::kAbsD: {
        double* dd = own_d(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        for (std::size_t l = 0; l < n; ++l) {
          dd[l] = std::fabs(a.d[l]);
          dv[l] = a.valid[l];
        }
        break;
      }
      case Op::kSqrt: {
        double* dd = own_d(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        const std::uint8_t* m = scratch.views[ins.m].valid;
        for (std::size_t l = 0; l < n; ++l) {
          const double x = lane_num(a, ins.at, l);
          if (a.valid[l] != 0 && x < 0) {
            if (m[l] != 0) throw EvalError("SQRT of negative value");
            dd[l] = 0.0;
          } else {
            dd[l] = std::sqrt(x);
          }
          dv[l] = a.valid[l];
        }
        break;
      }
      case Op::kFloorD:
      case Op::kCeilD: {
        double* dd = own_d(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        const bool is_floor = ins.op == Op::kFloorD;
        for (std::size_t l = 0; l < n; ++l) {
          const double x = lane_num(a, ins.at, l);
          dd[l] = is_floor ? std::floor(x) : std::ceil(x);
          dv[l] = a.valid[l];
        }
        break;
      }
      case Op::kRound: {
        double* dd = own_d(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        const double digits =
            ins.payload != kNoPayload ? bound[ins.payload].as_double() : 0.0;
        const double scale = std::pow(10.0, digits);
        for (std::size_t l = 0; l < n; ++l) {
          dd[l] = std::round(lane_num(a, ins.at, l) * scale) / scale;
          dv[l] = a.valid[l];
        }
        break;
      }
      case Op::kLength: {
        std::int64_t* di = own_i(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        for (std::size_t l = 0; l < n; ++l) {
          di[l] = static_cast<std::int64_t>(a.s[l].size());
          dv[l] = a.valid[l];
        }
        break;
      }
      case Op::kUpper:
      case Op::kLower: {
        std::string* ds = own_s(ins.dest);
        std::uint8_t* dv = own_v(ins.dest);
        const bool upper = ins.op == Op::kUpper;
        for (std::size_t l = 0; l < n; ++l) {
          if (a.valid[l] != 0) {
            ds[l] = upper ? support::to_upper(a.s[l]) : support::to_lower(a.s[l]);
          } else {
            ds[l].clear();
          }
          dv[l] = a.valid[l];
        }
        break;
      }
      case Op::kMaskSeed: {
        scratch.views[ins.dest].valid =
            demand != nullptr ? demand + begin : scratch.ones.data();
        break;
      }
      case Op::kMaskAndTrue:
      case Op::kMaskAndNotTrue:
      case Op::kMaskAndNotFalse: {
        std::uint8_t* dv = own_v(ins.dest);
        const bool want_true = ins.op != Op::kMaskAndNotFalse;
        const bool keep_on = ins.op == Op::kMaskAndTrue;
        for (std::size_t l = 0; l < n; ++l) {
          const bool hit =
              b.valid[l] != 0 && (want_true ? b.i[l] != 0 : b.i[l] == 0);
          dv[l] = (a.valid[l] != 0 && (keep_on ? hit : !hit)) ? 1 : 0;
        }
        break;
      }
      case Op::kMaskAndInvalid: {
        std::uint8_t* dv = own_v(ins.dest);
        for (std::size_t l = 0; l < n; ++l) {
          dv[l] = (a.valid[l] != 0 && b.valid[l] == 0) ? 1 : 0;
        }
        break;
      }
    }
  }

  Result out;
  out.type = root_type_;
  const Scratch::View& root = scratch.views[root_reg_];
  out.ints = root.i;
  out.reals = root.d;
  out.strs = root.s;
  out.valid = root.valid;
  return out;
}

}  // namespace kojak::db::sql
