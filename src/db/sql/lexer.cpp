#include "db/sql/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::db::sql {

using support::ParseError;
using support::SourceLoc;

bool Token::is_keyword(std::string_view kw) const {
  return kind == TokenKind::kIdent && support::iequals(text, kw);
}

namespace {

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  [[nodiscard]] SourceLoc loc() const noexcept { return {line_, column_, pos_}; }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

}  // namespace

std::vector<Token> lex_sql(std::string_view source) {
  std::vector<Token> tokens;
  Cursor cur(source);

  const auto is_ident_start = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  const auto is_ident_char = [&](char c) {
    return is_ident_start(c) || std::isdigit(static_cast<unsigned char>(c));
  };

  while (!cur.at_end()) {
    const char c = cur.peek();
    const SourceLoc loc = cur.loc();

    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.advance();
      continue;
    }
    if (c == '-' && cur.peek(1) == '-') {
      while (!cur.at_end() && cur.peek() != '\n') cur.advance();
      continue;
    }
    if (is_ident_start(c)) {
      std::string text;
      while (!cur.at_end() && is_ident_char(cur.peek())) text += cur.advance();
      tokens.push_back({TokenKind::kIdent, std::move(text), 0, 0.0, loc});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string text;
      bool is_float = false;
      while (!cur.at_end() && std::isdigit(static_cast<unsigned char>(cur.peek()))) {
        text += cur.advance();
      }
      if (cur.peek() == '.' && std::isdigit(static_cast<unsigned char>(cur.peek(1)))) {
        is_float = true;
        text += cur.advance();
        while (!cur.at_end() && std::isdigit(static_cast<unsigned char>(cur.peek()))) {
          text += cur.advance();
        }
      }
      if (cur.peek() == 'e' || cur.peek() == 'E') {
        const char sign = cur.peek(1);
        const char digit = (sign == '+' || sign == '-') ? cur.peek(2) : sign;
        if (std::isdigit(static_cast<unsigned char>(digit))) {
          is_float = true;
          text += cur.advance();  // e
          if (cur.peek() == '+' || cur.peek() == '-') text += cur.advance();
          while (!cur.at_end() &&
                 std::isdigit(static_cast<unsigned char>(cur.peek()))) {
            text += cur.advance();
          }
        }
      }
      Token tok;
      tok.loc = loc;
      tok.text = text;
      if (is_float) {
        tok.kind = TokenKind::kFloatLit;
        tok.float_value = std::strtod(text.c_str(), nullptr);
      } else {
        tok.kind = TokenKind::kIntLit;
        tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      cur.advance();
      std::string text;
      bool closed = false;
      while (!cur.at_end()) {
        const char ch = cur.advance();
        if (ch == '\'') {
          if (cur.peek() == '\'') {
            text += '\'';
            cur.advance();
          } else {
            closed = true;
            break;
          }
        } else {
          text += ch;
        }
      }
      if (!closed) throw ParseError("unterminated string literal", loc);
      tokens.push_back({TokenKind::kStringLit, std::move(text), 0, 0.0, loc});
      continue;
    }

    // Two-character operators first.
    const char n = cur.peek(1);
    std::string sym;
    if ((c == '<' && (n == '=' || n == '>')) || (c == '>' && n == '=') ||
        (c == '!' && n == '=')) {
      sym += cur.advance();
      sym += cur.advance();
    } else if (std::string_view("()*,.=<>+-/%?;").find(c) != std::string_view::npos) {
      sym += cur.advance();
    } else {
      throw ParseError(support::cat("unexpected character '", c, "'"), loc);
    }
    tokens.push_back({TokenKind::kSymbol, std::move(sym), 0, 0.0, loc});
  }

  tokens.push_back({TokenKind::kEnd, "", 0, 0.0, cur.loc()});
  return tokens;
}

}  // namespace kojak::db::sql
