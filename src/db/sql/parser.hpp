#ifndef KOJAK_DB_SQL_PARSER_HPP
#define KOJAK_DB_SQL_PARSER_HPP

#include <string_view>
#include <vector>

#include "db/sql/ast.hpp"

namespace kojak::db::sql {

/// Parses a script of `;`-separated statements. Throws support::ParseError
/// on the first syntax error (SQL here is machine-generated or short, so
/// multi-error recovery is reserved for the ASL front end).
[[nodiscard]] std::vector<Statement> parse_sql(std::string_view source);

/// Parses exactly one statement (trailing `;` optional). A script with
/// more than one statement is a diagnostic ParseError located at the start
/// of the second statement — prepared statements are one statement each, so
/// a silent first/last-statement pick would hide real caller bugs.
[[nodiscard]] Statement parse_single(std::string_view source);

}  // namespace kojak::db::sql

#endif  // KOJAK_DB_SQL_PARSER_HPP
