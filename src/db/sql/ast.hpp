#ifndef KOJAK_DB_SQL_AST_HPP
#define KOJAK_DB_SQL_AST_HPP

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "db/schema.hpp"
#include "db/value.hpp"
#include "support/source_location.hpp"

namespace kojak::db::sql {

/// Argument cap of the variadic scalar functions (COALESCE, LEAST,
/// GREATEST) in the executor's binder — the single definition query
/// compilers consult too: a MIN/MAX partition-union fold with more shards
/// than this would fail at bind time, so the rewrite declines beyond it.
inline constexpr std::size_t kMaxScalarFnArgs = 64;

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;
struct SelectStmt;

enum class BinOp : std::uint8_t {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr,
};
enum class UnOp : std::uint8_t { kNeg, kNot };

[[nodiscard]] std::string_view to_string(BinOp op);

/// SQL expression node. A single struct with a kind discriminator keeps the
/// binder/executor simple; unused fields stay empty.
struct Expr {
  enum class Kind : std::uint8_t {
    kLiteral,    // literal
    kColumnRef,  // [table.]column  (resolved_slot filled by the binder)
    kParam,      // ? placeholder, 0-based param_index
    kUnary,      // un_op lhs
    kBinary,     // lhs bin_op rhs
    kFuncCall,   // func(args...) — scalar or aggregate; star_arg for COUNT(*)
    kIsNull,     // lhs IS [NOT] NULL
    kInList,     // lhs IN (args...)
    kLike,       // lhs LIKE rhs (negated supports NOT LIKE)
    kSubquery,   // scalar subquery (uncorrelated)
    kAliasRef,   // ORDER BY / HAVING reference to a select item (alias_index)
  };

  Kind kind = Kind::kLiteral;
  support::SourceLoc loc;

  Value literal;

  std::string table;   // optional qualifier of a column ref
  std::string column;
  /// Filled by the binder: slot in the flattened scan row; SIZE_MAX until bound.
  std::size_t resolved_slot = static_cast<std::size_t>(-1);

  std::size_t param_index = 0;

  UnOp un_op = UnOp::kNeg;
  BinOp bin_op = BinOp::kAnd;
  ExprPtr lhs;
  ExprPtr rhs;

  std::string func;
  std::vector<ExprPtr> args;
  bool star_arg = false;
  bool distinct_arg = false;  // COUNT(DISTINCT x)

  bool negated = false;  // IS NOT NULL / NOT IN / NOT LIKE

  std::unique_ptr<SelectStmt> subquery;

  std::size_t alias_index = 0;

  /// Structural deep copy (used when ORDER BY aliases expand to items).
  [[nodiscard]] ExprPtr clone() const;
  /// Debug / display rendering, also used to derive result column names.
  [[nodiscard]] std::string to_string() const;
};

struct SelectItem {
  ExprPtr expr;          // null when star
  std::string alias;     // empty when none
  bool star = false;     // SELECT * or t.*
  std::string star_table;
};

struct TableRef {
  std::string table;
  std::string alias;  // empty -> table name is the qualifier
  /// `FROM t PARTITION (k) [alias]`: restrict the scan to partition k of a
  /// partitioned catalog table. Only valid on catalog tables — the parser
  /// rejects selectors on CTE names, the executor on any derived source —
  /// and out-of-range selectors are an execution-time diagnostic. This is
  /// the scan predicate the partition-union rewrite compiles per-partition
  /// CTEs with.
  std::optional<std::size_t> partition;
  support::SourceLoc loc;

  [[nodiscard]] const std::string& qualifier() const noexcept {
    return alias.empty() ? table : alias;
  }
};

struct Join {
  TableRef table;
  ExprPtr on;  // may be null for CROSS JOIN
};

struct OrderKey {
  ExprPtr expr;
  bool descending = false;
};

/// One `name AS (SELECT ...)` entry of a statement-level WITH clause.
/// Non-recursive: a CTE body may reference only CTEs defined before it
/// (the parser rejects self and forward references with a diagnostic).
/// The executor materializes each CTE exactly once per statement execution;
/// every scalar subquery or FROM that names it scans the materialized rows.
struct CommonTableExpr {
  std::string name;
  std::unique_ptr<SelectStmt> select;
  support::SourceLoc loc;
};

/// Executor-side hot-plan annotations (defined in db/sql/plan.hpp): the
/// structural analyses behind the fused single-pass columnar evaluator and
/// its grouped (GROUP BY) sibling. Opaque here so the AST header stays free
/// of plan details; ast.cpp and the executor include plan.hpp.
struct FusedScanPlan;
struct FusedGroupPlan;

struct SelectStmt {
  std::vector<CommonTableExpr> ctes;  // statement-level WITH, in order
  bool distinct = false;
  std::vector<SelectItem> items;
  std::optional<TableRef> from;
  std::vector<Join> joins;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderKey> order_by;
  std::optional<std::size_t> limit;
  std::optional<std::size_t> offset;

  /// Hot-plan annotations, filled lazily by the executor the first time this
  /// statement proves eligible for the fused single-pass columnar evaluator
  /// (`fused_plan`, global aggregate) or its grouped sibling
  /// (`fused_group_plan`, GROUP BY on column refs). Structural analysis only
  /// — per-execution decisions such as partition pruning are recomputed
  /// every run. `fused_rejected` caches a negative verdict so ineligible
  /// statements are analyzed once. Mutable because execution works on const
  /// statements; safe under the executor's concurrency contract (concurrent
  /// execution only of DISTINCT prepared statements). The plans hold
  /// pointers into this statement's expression tree; clone() carries them by
  /// remapping every pointer onto the cloned tree, so PlanCache-cloned
  /// statements start hot instead of re-analyzing.
  mutable std::shared_ptr<const FusedScanPlan> fused_plan;
  mutable std::shared_ptr<const FusedGroupPlan> fused_group_plan;
  mutable bool fused_rejected = false;

  /// Structural deep copy (subquery materialization executes a copy so the
  /// original statement stays reusable). Carries the fused-plan annotations
  /// across the copy (expression pointers remapped onto the cloned tree).
  /// The overload additionally reports the old-node → new-node map of every
  /// cloned Expr, letting callers translate plan annotations in the other
  /// direction — the executor back-propagates a plan built while running a
  /// subquery clone onto the original statement through the inverted map.
  [[nodiscard]] std::unique_ptr<SelectStmt> clone() const;
  [[nodiscard]] std::unique_ptr<SelectStmt> clone(
      std::unordered_map<const Expr*, const Expr*>* remap) const;
};

/// Visits every TableRef of one SELECT — FROM, every JOIN, and every
/// expression position (WHERE, items, GROUP BY, HAVING, ORDER BY, join
/// conditions), recursing into scalar subqueries. Does NOT descend into
/// `stmt.ctes`: CTE bodies are separate scopes and every caller (the
/// parser's reference/selector validation, the executor's dependency
/// analysis) walks them individually. The one traversal all of them share —
/// so a new expression-bearing clause is added here once, not in three
/// hand-rolled copies.
void for_each_table_ref(const SelectStmt& stmt,
                        const std::function<void(const TableRef&)>& fn);

struct CreateTableStmt {
  TableSchema schema;
  bool if_not_exists = false;
};

struct CreateIndexStmt {
  std::string index_name;
  std::string table;
  std::string column;
  bool ordered = false;  // CREATE [ORDERED] INDEX (hash is the default)
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty -> full row order
  std::vector<std::vector<ExprPtr>> rows;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

struct DropTableStmt {
  std::string table;
  bool if_exists = false;
};

using Statement = std::variant<SelectStmt, CreateTableStmt, CreateIndexStmt,
                               InsertStmt, UpdateStmt, DeleteStmt, DropTableStmt>;

}  // namespace kojak::db::sql

#endif  // KOJAK_DB_SQL_AST_HPP
