#ifndef KOJAK_DB_SQL_TOKEN_HPP
#define KOJAK_DB_SQL_TOKEN_HPP

#include <cstdint>
#include <string>

#include "support/source_location.hpp"

namespace kojak::db::sql {

enum class TokenKind : std::uint8_t {
  kIdent,    // bare identifier or keyword (SQL keywords are case-insensitive)
  kIntLit,
  kFloatLit,
  kStringLit,
  kSymbol,   // punctuation / operator, text holds the exact spelling
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;            // identifier spelling, operator, or string body
  std::int64_t int_value = 0;
  double float_value = 0.0;
  support::SourceLoc loc;

  [[nodiscard]] bool is_symbol(std::string_view s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
  /// Case-insensitive keyword test (keywords are ordinary identifiers).
  [[nodiscard]] bool is_keyword(std::string_view kw) const;
};

}  // namespace kojak::db::sql

#endif  // KOJAK_DB_SQL_TOKEN_HPP
