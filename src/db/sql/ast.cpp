#include "db/sql/ast.hpp"

#include "db/sql/plan.hpp"
#include "support/str.hpp"

namespace kojak::db::sql {

std::string_view to_string(BinOp op) {
  switch (op) {
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
  }
  return "?";
}

namespace {

// The clone walk records every (source node → copy) pair in `remap` so plan
// annotations — which hold `const Expr*` into the source tree — can be
// carried onto the copy (or back-propagated through the inverted map).

std::unique_ptr<SelectStmt> clone_select(const SelectStmt& s, ExprRemap& remap);

ExprPtr clone_expr(const Expr& e, ExprRemap& remap) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->loc = e.loc;
  out->literal = e.literal;
  out->table = e.table;
  out->column = e.column;
  out->resolved_slot = e.resolved_slot;
  out->param_index = e.param_index;
  out->un_op = e.un_op;
  out->bin_op = e.bin_op;
  if (e.lhs) out->lhs = clone_expr(*e.lhs, remap);
  if (e.rhs) out->rhs = clone_expr(*e.rhs, remap);
  out->func = e.func;
  for (const auto& a : e.args) out->args.push_back(clone_expr(*a, remap));
  out->star_arg = e.star_arg;
  out->distinct_arg = e.distinct_arg;
  out->negated = e.negated;
  if (e.subquery) out->subquery = clone_select(*e.subquery, remap);
  out->alias_index = e.alias_index;
  remap[&e] = out.get();
  return out;
}

std::unique_ptr<SelectStmt> clone_select(const SelectStmt& s,
                                         ExprRemap& remap) {
  auto out = std::make_unique<SelectStmt>();
  for (const auto& cte : s.ctes) {
    out->ctes.push_back({cte.name, clone_select(*cte.select, remap), cte.loc});
  }
  out->distinct = s.distinct;
  for (const auto& item : s.items) {
    SelectItem copy;
    if (item.expr) copy.expr = clone_expr(*item.expr, remap);
    copy.alias = item.alias;
    copy.star = item.star;
    copy.star_table = item.star_table;
    out->items.push_back(std::move(copy));
  }
  out->from = s.from;
  for (const auto& join : s.joins) {
    Join copy;
    copy.table = join.table;
    if (join.on) copy.on = clone_expr(*join.on, remap);
    out->joins.push_back(std::move(copy));
  }
  if (s.where) out->where = clone_expr(*s.where, remap);
  for (const auto& g : s.group_by)
    out->group_by.push_back(clone_expr(*g, remap));
  if (s.having) out->having = clone_expr(*s.having, remap);
  for (const auto& k : s.order_by) {
    out->order_by.push_back({clone_expr(*k.expr, remap), k.descending});
  }
  out->limit = s.limit;
  out->offset = s.offset;
  // Carry the hot-plan annotations: re-target their expression pointers onto
  // the freshly cloned tree. remap_onto degrades to nullptr (re-analyze) if
  // a pointer is not covered; a negative verdict is pointer-free and always
  // carries.
  if (s.fused_plan) out->fused_plan = remap_onto(*s.fused_plan, remap);
  if (s.fused_group_plan) {
    out->fused_group_plan = remap_onto(*s.fused_group_plan, remap);
  }
  out->fused_rejected = s.fused_rejected;
  return out;
}

}  // namespace

ExprPtr Expr::clone() const {
  ExprRemap remap;
  return clone_expr(*this, remap);
}

namespace {

void walk_refs(const SelectStmt& s,
               const std::function<void(const TableRef&)>& fn);

void walk_refs(const Expr& e, const std::function<void(const TableRef&)>& fn) {
  if (e.subquery) walk_refs(*e.subquery, fn);
  if (e.lhs) walk_refs(*e.lhs, fn);
  if (e.rhs) walk_refs(*e.rhs, fn);
  for (const auto& arg : e.args) walk_refs(*arg, fn);
}

void walk_refs(const SelectStmt& s,
               const std::function<void(const TableRef&)>& fn) {
  if (s.from) fn(*s.from);
  for (const Join& join : s.joins) {
    fn(join.table);
    if (join.on) walk_refs(*join.on, fn);
  }
  for (const auto& item : s.items) {
    if (item.expr) walk_refs(*item.expr, fn);
  }
  if (s.where) walk_refs(*s.where, fn);
  for (const auto& g : s.group_by) walk_refs(*g, fn);
  if (s.having) walk_refs(*s.having, fn);
  for (const auto& key : s.order_by) walk_refs(*key.expr, fn);
}

}  // namespace

void for_each_table_ref(const SelectStmt& stmt,
                        const std::function<void(const TableRef&)>& fn) {
  walk_refs(stmt, fn);
}

std::unique_ptr<SelectStmt> SelectStmt::clone() const {
  ExprRemap remap;
  return clone_select(*this, remap);
}

std::unique_ptr<SelectStmt> SelectStmt::clone(
    std::unordered_map<const Expr*, const Expr*>* remap) const {
  ExprRemap local;
  auto out = clone_select(*this, remap == nullptr ? local : *remap);
  return out;
}

std::string Expr::to_string() const {
  using support::cat;
  switch (kind) {
    case Kind::kLiteral:
      return literal.to_display();
    case Kind::kColumnRef:
      return table.empty() ? column : cat(table, ".", column);
    case Kind::kParam:
      return "?";
    case Kind::kUnary:
      return cat(un_op == UnOp::kNeg ? "-" : "NOT ", lhs ? lhs->to_string() : "");
    case Kind::kBinary:
      return cat("(", lhs ? lhs->to_string() : "", " ", sql::to_string(bin_op),
                 " ", rhs ? rhs->to_string() : "", ")");
    case Kind::kFuncCall: {
      std::string out = func;
      out += '(';
      if (star_arg) {
        out += '*';
      } else {
        if (distinct_arg) out += "DISTINCT ";
        for (std::size_t i = 0; i < args.size(); ++i) {
          if (i > 0) out += ", ";
          out += args[i]->to_string();
        }
      }
      out += ')';
      return out;
    }
    case Kind::kIsNull:
      return cat(lhs ? lhs->to_string() : "", negated ? " IS NOT NULL" : " IS NULL");
    case Kind::kInList: {
      std::string out = lhs ? lhs->to_string() : "";
      out += negated ? " NOT IN (" : " IN (";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->to_string();
      }
      out += ')';
      return out;
    }
    case Kind::kLike:
      return cat(lhs ? lhs->to_string() : "", negated ? " NOT LIKE " : " LIKE ",
                 rhs ? rhs->to_string() : "");
    case Kind::kSubquery:
      return "(SELECT ...)";
    case Kind::kAliasRef:
      return cat("@", alias_index);
  }
  return "?";
}

}  // namespace kojak::db::sql
