#include "db/sql/plan.hpp"

namespace kojak::db::sql {

namespace {

/// nullptr-preserving pointer translation; sets `ok` false on a miss so the
/// caller can abandon the whole carry instead of shipping a dangling plan.
const Expr* translate(const Expr* expr, const ExprRemap& map, bool& ok) {
  if (expr == nullptr) return nullptr;
  const auto it = map.find(expr);
  if (it == map.end()) {
    ok = false;
    return nullptr;
  }
  return it->second;
}

/// nullptr-preserving program carry: compiled programs hold `const Expr*`
/// runtime-constant slots (params, scalar subqueries) that must follow the
/// clone exactly like the plan's own pointers.
bool remap_program(std::shared_ptr<const ExprProgram>& program,
                   const ExprRemap& map) {
  if (program == nullptr) return true;
  program = program->remapped(map);
  return program != nullptr;
}

bool remap_conjuncts(std::vector<FusedScanPlan::Conjunct>& conjuncts,
                     const ExprRemap& map) {
  bool ok = true;
  for (auto& c : conjuncts) c.constant = translate(c.constant, map, ok);
  return ok;
}

bool remap_aggregates(std::vector<FusedScanPlan::Aggregate>& aggregates,
                      const ExprRemap& map) {
  bool ok = true;
  for (auto& a : aggregates) {
    a.expr = translate(a.expr, map, ok);
    if (!remap_program(a.program, map)) return false;
  }
  return ok;
}

}  // namespace

std::shared_ptr<const FusedScanPlan> remap_onto(const FusedScanPlan& plan,
                                                const ExprRemap& map) {
  auto out = std::make_shared<FusedScanPlan>(plan);
  if (!remap_conjuncts(out->conjuncts, map)) return nullptr;
  if (!remap_program(out->where_program, map)) return nullptr;
  if (!remap_aggregates(out->aggregates, map)) return nullptr;
  return out;
}

std::shared_ptr<const FusedGroupPlan> remap_onto(const FusedGroupPlan& plan,
                                                 const ExprRemap& map) {
  auto out = std::make_shared<FusedGroupPlan>(plan);
  if (!remap_conjuncts(out->conjuncts, map)) return nullptr;
  if (!remap_program(out->where_program, map)) return nullptr;
  for (auto& key : out->group_keys) {
    if (!remap_program(key.program, map)) return nullptr;
  }
  bool ok = true;
  for (auto& [node, index] : out->key_refs) {
    node = translate(node, map, ok);
  }
  if (!ok) return nullptr;
  if (!remap_aggregates(out->aggregates, map)) return nullptr;
  return out;
}

}  // namespace kojak::db::sql
