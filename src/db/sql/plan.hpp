#ifndef KOJAK_DB_SQL_PLAN_HPP
#define KOJAK_DB_SQL_PLAN_HPP

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "db/sql/ast.hpp"
#include "db/sql/expr_vm.hpp"
#include "db/value.hpp"

namespace kojak::db::sql {

/// Hot-plan annotation behind `SelectStmt::fused_plan`: the structural
/// analysis of the dominant whole-condition shape — a single-table global
/// aggregate with an AND-of-simple-conjuncts filter (the per-partition
/// `part<K>` CTE body the partition-union rewrite emits). Built once per
/// statement by the executor, reused by every later execution of the same
/// statement (prepared statements, plan-cache hits, monitor re-evaluation);
/// everything value-dependent — partition pruning, parameter and subquery
/// constants, (column, constant) type compatibility — is re-derived per
/// execution. Expression pointers reference the owning statement's AST, so
/// the annotation must never outlive or migrate off its statement —
/// `SelectStmt::clone()` carries it by remapping every pointer onto the
/// cloned expression tree (see remap_onto below).
struct FusedScanPlan {
  std::string table;                    // base table the statement scans
  std::vector<ValueType> column_types;  // schema snapshot, validated on reuse

  /// One WHERE conjunct: `column op constant` (constant = literal, param,
  /// or scalar subquery) or `column IS [NOT] NULL`.
  struct Conjunct {
    std::size_t column = 0;
    BinOp op = BinOp::kEq;           // comparison ops only
    const Expr* constant = nullptr;  // null for IS [NOT] NULL tests
    bool is_null_test = false;
    bool negated = false;  // IS NOT NULL
  };
  std::vector<Conjunct> conjuncts;

  /// Whole-WHERE bytecode program, used when the filter is not an
  /// AND-of-simple-conjuncts (`conjuncts` and `where_program` are mutually
  /// exclusive): its boolean output lanes AND into the selection bitmap
  /// with NULL-as-false semantics.
  std::shared_ptr<const ExprProgram> where_program;

  /// One aggregate call: over a plain base column (program == nullptr;
  /// column == SIZE_MAX for COUNT(*)) or over an arbitrary compiled value
  /// program whose output lanes feed the same kernels. Collected in
  /// run_aggregation's order (items, HAVING, ORDER BY) so finalized values
  /// map back onto the same Expr nodes.
  struct Aggregate {
    const Expr* expr = nullptr;
    std::size_t column = static_cast<std::size_t>(-1);
    std::shared_ptr<const ExprProgram> program;
  };
  std::vector<Aggregate> aggregates;
};

/// Hot-plan annotation behind `SelectStmt::fused_group_plan`: the grouped
/// sibling of FusedScanPlan for `GROUP BY <scalar exprs>` over one columnar
/// table. Same lifecycle and reuse contract; group keys are base-relative
/// column indices (program == nullptr) or compiled key programs, in
/// GROUP BY order.
struct FusedGroupPlan {
  std::string table;
  std::vector<ValueType> column_types;  // schema snapshot, validated on reuse
  std::vector<FusedScanPlan::Conjunct> conjuncts;
  std::shared_ptr<const ExprProgram> where_program;

  struct GroupKey {
    std::size_t column = static_cast<std::size_t>(-1);  // SIZE_MAX => program
    std::shared_ptr<const ExprProgram> program;
  };
  std::vector<GroupKey> group_keys;  // GROUP BY order

  /// Output-side nodes (in items / HAVING / ORDER BY) structurally equal to
  /// a *program* group key: evaluated as that key's per-group value via
  /// EvalCtx pinning instead of from the representative row. Plain-column
  /// keys need no pinning — the representative row already carries them.
  std::vector<std::pair<const Expr*, std::size_t>> key_refs;

  std::vector<FusedScanPlan::Aggregate> aggregates;
};

/// Re-targets a plan's expression pointers through `map`. Returns nullptr if
/// any pointer is missing from the map — a carried plan must never dangle, so
/// an incomplete map silently degrades to "re-analyze on first execution".
[[nodiscard]] std::shared_ptr<const FusedScanPlan> remap_onto(
    const FusedScanPlan& plan, const ExprRemap& map);
[[nodiscard]] std::shared_ptr<const FusedGroupPlan> remap_onto(
    const FusedGroupPlan& plan, const ExprRemap& map);

}  // namespace kojak::db::sql

#endif  // KOJAK_DB_SQL_PLAN_HPP
