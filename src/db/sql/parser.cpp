#include "db/sql/parser.hpp"

#include <algorithm>

#include "db/sql/lexer.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::db::sql {

using support::ParseError;

namespace {

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(lex_sql(source)) {}

  std::vector<Statement> parse_script() {
    std::vector<Statement> out;
    while (!at_end()) {
      if (accept_symbol(";")) continue;
      out.push_back(parse_statement());
      if (!at_end()) expect_symbol(";");
    }
    return out;
  }

  /// Exactly one statement, then end of input. Anything after the trailing
  /// `;` is an error anchored at the offending token, so a prepare() of a
  /// multi-statement script fails loudly instead of silently picking one.
  Statement parse_one() {
    while (accept_symbol(";")) {}
    Statement stmt = parse_statement();
    while (accept_symbol(";")) {}
    if (!at_end()) {
      throw ParseError(
          support::cat("expected end of input after the first statement, got '",
                       peek().text,
                       "' (prepare() takes exactly one statement; run scripts "
                       "through Database::execute)"),
          peek().loc);
    }
    return stmt;
  }

 private:
  // --- token plumbing -------------------------------------------------
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  [[nodiscard]] bool at_end() const { return peek().kind == TokenKind::kEnd; }

  bool accept_symbol(std::string_view s) {
    if (peek().is_symbol(s)) {
      advance();
      return true;
    }
    return false;
  }
  void expect_symbol(std::string_view s) {
    if (!accept_symbol(s)) {
      throw ParseError(support::cat("expected '", s, "', got '", peek().text, "'"),
                       peek().loc);
    }
  }
  bool accept_keyword(std::string_view kw) {
    if (peek().is_keyword(kw)) {
      advance();
      return true;
    }
    return false;
  }
  void expect_keyword(std::string_view kw) {
    if (!accept_keyword(kw)) {
      throw ParseError(support::cat("expected ", kw, ", got '", peek().text, "'"),
                       peek().loc);
    }
  }
  std::string expect_ident(std::string_view what) {
    if (peek().kind != TokenKind::kIdent) {
      throw ParseError(support::cat("expected ", what, ", got '", peek().text, "'"),
                       peek().loc);
    }
    return advance().text;
  }

  // --- statements ------------------------------------------------------
  Statement parse_statement() {
    if (peek().is_keyword("WITH")) return parse_with_select();
    if (peek().is_keyword("SELECT")) return parse_select();
    if (peek().is_keyword("CREATE")) return parse_create();
    if (peek().is_keyword("INSERT")) return parse_insert();
    if (peek().is_keyword("UPDATE")) return parse_update();
    if (peek().is_keyword("DELETE")) return parse_delete();
    if (peek().is_keyword("DROP")) return parse_drop();
    throw ParseError(support::cat("expected a statement, got '", peek().text, "'"),
                     peek().loc);
  }

  /// `WITH name AS (SELECT ...), ... SELECT ...` — non-recursive common
  /// table expressions. Each body may reference only the CTEs defined
  /// before it; duplicates, self references, and forward references are
  /// rejected here with a diagnostic instead of surfacing as an "unknown
  /// table" at execution time.
  SelectStmt parse_with_select() {
    expect_keyword("WITH");
    if (peek().is_keyword("RECURSIVE")) {
      throw ParseError("recursive CTEs are not supported (WITH is "
                       "non-recursive in this engine)",
                       peek().loc);
    }
    std::vector<CommonTableExpr> ctes;
    do {
      CommonTableExpr cte;
      cte.loc = peek().loc;
      cte.name = expect_ident("CTE name");
      for (const CommonTableExpr& prior : ctes) {
        if (support::iequals(prior.name, cte.name)) {
          throw ParseError(support::cat("duplicate CTE name '", cte.name, "'"),
                           cte.loc);
        }
      }
      expect_keyword("AS");
      expect_symbol("(");
      cte.select = std::make_unique<SelectStmt>(parse_select());
      expect_symbol(")");
      ctes.push_back(std::move(cte));
    } while (accept_symbol(","));
    if (!peek().is_keyword("SELECT")) {
      throw ParseError(support::cat("expected SELECT after WITH clause, got '",
                                    peek().text, "'"),
                       peek().loc);
    }
    SelectStmt stmt = parse_select();
    for (std::size_t i = 0; i < ctes.size(); ++i) {
      check_cte_references(*ctes[i].select, ctes, i);
    }
    // PARTITION selectors apply to catalog tables only: a CTE is a
    // materialized temp result with no partitions, so `FROM cte PARTITION
    // (k)` is a located diagnostic here instead of a misleading "unknown
    // partition" surprise at execution time. Bodies are checked too — an
    // earlier CTE is just as partition-free as the final result.
    check_partition_selectors(stmt, ctes);
    for (const CommonTableExpr& cte : ctes) {
      check_partition_selectors(*cte.select, ctes);
    }
    stmt.ctes = std::move(ctes);
    return stmt;
  }

  /// Rejects `PARTITION (k)` selectors on names that resolve to a CTE of
  /// this statement's WITH clause (anywhere in the select: FROM, JOINs, and
  /// subqueries, recursively).
  static void check_partition_selectors(
      const SelectStmt& select, const std::vector<CommonTableExpr>& ctes) {
    for_each_table_ref(select, [&](const TableRef& ref) {
      if (!ref.partition) return;
      for (const CommonTableExpr& cte : ctes) {
        if (support::iequals(ref.table, cte.name)) {
          throw ParseError(
              support::cat("PARTITION selector on CTE '", ref.table,
                           "' (partition selection applies to partitioned "
                           "catalog tables, not temp results)"),
              ref.loc);
        }
      }
    });
  }

  /// Walks every table reference of the `index`-th CTE's body (FROM, JOINs,
  /// and subqueries, recursively) and rejects references to itself
  /// (recursive) or to a CTE defined after it (forward reference).
  /// References to real tables pass through untouched — the executor
  /// resolves those against the catalog. Deliberately conservative: the
  /// parser has no catalog, so a body naming a base table that a LATER
  /// CTE shadows is indistinguishable from a forward reference and is
  /// rejected too — renaming the CTE resolves the ambiguity, and a clear
  /// parse error beats a silently catalog-dependent meaning.
  static void check_cte_references(const SelectStmt& body,
                                   const std::vector<CommonTableExpr>& ctes,
                                   std::size_t index) {
    for_each_table_ref(body, [&](const TableRef& ref) {
      for (std::size_t j = 0; j < ctes.size(); ++j) {
        if (!support::iequals(ref.table, ctes[j].name)) continue;
        if (j == index) {
          throw ParseError(
              support::cat("CTE '", ctes[index].name,
                           "' references itself; recursive CTEs are not "
                           "supported"),
              ref.loc);
        }
        if (j > index) {
          throw ParseError(
              support::cat("CTE '", ctes[index].name,
                           "' references '", ctes[j].name,
                           "' before it is defined (CTEs may only reference "
                           "earlier entries of the WITH clause)"),
              ref.loc);
        }
      }
    });
  }

  SelectStmt parse_select() {
    expect_keyword("SELECT");
    SelectStmt stmt;
    if (accept_keyword("DISTINCT")) stmt.distinct = true;

    do {
      SelectItem item;
      if (accept_symbol("*")) {
        item.star = true;
      } else if (peek().kind == TokenKind::kIdent && peek(1).is_symbol(".") &&
                 peek(2).is_symbol("*")) {
        item.star = true;
        item.star_table = advance().text;
        advance();  // .
        advance();  // *
      } else {
        item.expr = parse_expr();
        if (accept_keyword("AS")) {
          item.alias = expect_ident("alias");
        } else if (peek().kind == TokenKind::kIdent && !is_clause_keyword(peek())) {
          item.alias = advance().text;
        }
      }
      stmt.items.push_back(std::move(item));
    } while (accept_symbol(","));

    if (accept_keyword("FROM")) {
      stmt.from = parse_table_ref();
      while (true) {
        if (accept_keyword("JOIN") ||
            (peek().is_keyword("INNER") && peek(1).is_keyword("JOIN") &&
             (advance(), accept_keyword("JOIN")))) {
          Join join;
          join.table = parse_table_ref();
          expect_keyword("ON");
          join.on = parse_expr();
          stmt.joins.push_back(std::move(join));
        } else if (peek().is_keyword("CROSS") && peek(1).is_keyword("JOIN")) {
          advance();
          advance();
          Join join;
          join.table = parse_table_ref();
          stmt.joins.push_back(std::move(join));
        } else {
          break;
        }
      }
    }
    if (accept_keyword("WHERE")) stmt.where = parse_expr();
    if (peek().is_keyword("GROUP")) {
      advance();
      expect_keyword("BY");
      do {
        stmt.group_by.push_back(parse_expr());
      } while (accept_symbol(","));
    }
    if (accept_keyword("HAVING")) stmt.having = parse_expr();
    if (peek().is_keyword("ORDER")) {
      advance();
      expect_keyword("BY");
      do {
        OrderKey key;
        key.expr = parse_expr();
        if (accept_keyword("DESC")) {
          key.descending = true;
        } else {
          accept_keyword("ASC");
        }
        stmt.order_by.push_back(std::move(key));
      } while (accept_symbol(","));
    }
    if (accept_keyword("LIMIT")) {
      stmt.limit = parse_count("LIMIT");
      if (accept_keyword("OFFSET")) stmt.offset = parse_count("OFFSET");
    }
    return stmt;
  }

  std::size_t parse_count(std::string_view what) {
    if (peek().kind != TokenKind::kIntLit || peek().int_value < 0) {
      throw ParseError(support::cat(what, " expects a non-negative integer"),
                       peek().loc);
    }
    return static_cast<std::size_t>(advance().int_value);
  }

  [[nodiscard]] static bool is_clause_keyword(const Token& tok) {
    for (const char* kw :
         {"FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET", "JOIN",
          "INNER", "CROSS", "ON", "AS", "ASC", "DESC", "AND", "OR", "NOT",
          "UNION", "SET", "VALUES"}) {
      if (tok.is_keyword(kw)) return true;
    }
    return false;
  }

  TableRef parse_table_ref() {
    TableRef ref;
    ref.loc = peek().loc;
    ref.table = expect_ident("table name");
    // `t PARTITION (k)` pins the scan to one partition of a partitioned
    // catalog table (the per-partition CTEs of the partition-union rewrite
    // are built from exactly this form). Plain `t PARTITION` stays a legal
    // alias, so the selector only engages when a parenthesis follows.
    if (peek().is_keyword("PARTITION") && peek(1).is_symbol("(")) {
      advance();  // PARTITION
      expect_symbol("(");
      const Token& index_tok = peek();
      if (index_tok.kind != TokenKind::kIntLit || index_tok.int_value < 0) {
        throw ParseError("PARTITION selector expects a non-negative "
                         "partition index",
                         index_tok.loc);
      }
      ref.partition = static_cast<std::size_t>(advance().int_value);
      expect_symbol(")");
    }
    if (accept_keyword("AS")) {
      ref.alias = expect_ident("table alias");
    } else if (peek().kind == TokenKind::kIdent && !is_clause_keyword(peek())) {
      ref.alias = advance().text;
    }
    return ref;
  }

  Statement parse_create() {
    expect_keyword("CREATE");
    if (accept_keyword("TABLE")) {
      CreateTableStmt stmt;
      if (accept_keyword("IF")) {
        expect_keyword("NOT");
        expect_keyword("EXISTS");
        stmt.if_not_exists = true;
      }
      std::string name = expect_ident("table name");
      expect_symbol("(");
      std::vector<ColumnDef> columns;
      do {
        ColumnDef col;
        col.name = expect_ident("column name");
        const Token& type_tok = peek();
        const std::string type_name = expect_ident("type name");
        const auto type = parse_type_name(type_name);
        if (!type) {
          throw ParseError(support::cat("unknown type '", type_name, "'"),
                           type_tok.loc);
        }
        col.type = *type;
        while (true) {
          if (accept_keyword("PRIMARY")) {
            expect_keyword("KEY");
            col.primary_key = true;
            col.nullable = false;
          } else if (accept_keyword("NOT")) {
            expect_keyword("NULL");
            col.nullable = false;
          } else {
            break;
          }
        }
        columns.push_back(std::move(col));
      } while (accept_symbol(","));
      expect_symbol(")");
      std::optional<PartitionSpec> partition;
      if (accept_keyword("PARTITION")) {
        partition = parse_partition_clause(columns);
      }
      // `STORAGE COLUMNAR` (or the explicit default, `STORAGE ROW`) selects
      // the partition layout: columnar tables maintain typed column vectors
      // next to the row heap, which the executor's vectorized kernels scan.
      StorageMode storage = StorageMode::kRow;
      if (accept_keyword("STORAGE")) {
        const Token& mode_tok = peek();
        if (accept_keyword("COLUMNAR")) {
          storage = StorageMode::kColumnar;
        } else if (!accept_keyword("ROW")) {
          throw ParseError(support::cat("expected COLUMNAR or ROW after "
                                        "STORAGE, got '",
                                        mode_tok.text, "'"),
                           mode_tok.loc);
        }
      }
      stmt.schema = TableSchema(std::move(name), std::move(columns));
      if (partition) stmt.schema.set_partition(std::move(*partition));
      stmt.schema.set_storage(storage);
      return stmt;
    }
    bool ordered = false;
    if (accept_keyword("ORDERED")) ordered = true;
    expect_keyword("INDEX");
    CreateIndexStmt stmt;
    stmt.ordered = ordered;
    stmt.index_name = expect_ident("index name");
    expect_keyword("ON");
    stmt.table = expect_ident("table name");
    expect_symbol("(");
    stmt.column = expect_ident("column name");
    expect_symbol(")");
    return stmt;
  }

  /// `PARTITION BY HASH(col) PARTITIONS n` or
  /// `PARTITION BY RANGE(col) VALUES (b1, b2, ...)`, after the column list.
  /// Every mistake is a located diagnostic here — an unknown partition
  /// column or a descending bound list must not surface later as an
  /// execution-time surprise.
  PartitionSpec parse_partition_clause(const std::vector<ColumnDef>& columns) {
    expect_keyword("BY");
    PartitionSpec spec;
    const Token& method_tok = peek();
    if (accept_keyword("HASH")) {
      spec.method = PartitionSpec::Method::kHash;
    } else if (accept_keyword("RANGE")) {
      spec.method = PartitionSpec::Method::kRange;
    } else {
      throw ParseError(support::cat("expected HASH or RANGE after PARTITION "
                                    "BY, got '",
                                    method_tok.text, "'"),
                       method_tok.loc);
    }
    expect_symbol("(");
    const Token& column_tok = peek();
    spec.column = expect_ident("partition column");
    expect_symbol(")");
    const bool known = std::any_of(
        columns.begin(), columns.end(), [&](const ColumnDef& col) {
          return support::iequals(col.name, spec.column);
        });
    if (!known) {
      throw ParseError(support::cat("unknown partition column '", spec.column,
                                    "'"),
                       column_tok.loc);
    }
    if (spec.method == PartitionSpec::Method::kHash) {
      expect_keyword("PARTITIONS");
      const Token& count_tok = peek();
      if (count_tok.kind != TokenKind::kIntLit || count_tok.int_value < 1) {
        throw ParseError("PARTITIONS expects a positive integer",
                         count_tok.loc);
      }
      if (count_tok.int_value >
          static_cast<std::int64_t>(kMaxTablePartitions)) {
        throw ParseError(support::cat("at most ", kMaxTablePartitions,
                                      " partitions are supported"),
                         count_tok.loc);
      }
      spec.partitions = static_cast<std::size_t>(advance().int_value);
      return spec;
    }
    expect_keyword("VALUES");
    expect_symbol("(");
    do {
      const Token& bound_tok = peek();
      spec.range_bounds.push_back(parse_partition_bound());
      if (spec.range_bounds.size() > 1 &&
          Value::compare_total(spec.range_bounds[spec.range_bounds.size() - 2],
                               spec.range_bounds.back()) >= 0) {
        throw ParseError("range partition bounds must be strictly ascending",
                         bound_tok.loc);
      }
    } while (accept_symbol(","));
    expect_symbol(")");
    spec.partitions = spec.range_bounds.size() + 1;
    if (spec.partitions > kMaxTablePartitions) {
      throw ParseError(support::cat("at most ", kMaxTablePartitions,
                                    " partitions are supported"),
                       method_tok.loc);
    }
    return spec;
  }

  /// One literal range bound: a (possibly negated) number or a string.
  Value parse_partition_bound() {
    bool negative = false;
    if (accept_symbol("-")) negative = true;
    const Token& tok = peek();
    switch (tok.kind) {
      case TokenKind::kIntLit:
        return Value::integer(negative ? -advance().int_value
                                       : advance().int_value);
      case TokenKind::kFloatLit:
        return Value::real(negative ? -advance().float_value
                                    : advance().float_value);
      case TokenKind::kStringLit:
        if (negative) break;
        return Value::text(advance().text);
      default:
        break;
    }
    throw ParseError(support::cat("range partition bound must be a numeric or "
                                  "string literal, got '",
                                  tok.text, "'"),
                     tok.loc);
  }

  Statement parse_insert() {
    expect_keyword("INSERT");
    expect_keyword("INTO");
    InsertStmt stmt;
    stmt.table = expect_ident("table name");
    if (accept_symbol("(")) {
      do {
        stmt.columns.push_back(expect_ident("column name"));
      } while (accept_symbol(","));
      expect_symbol(")");
    }
    expect_keyword("VALUES");
    do {
      expect_symbol("(");
      std::vector<ExprPtr> row;
      do {
        row.push_back(parse_expr());
      } while (accept_symbol(","));
      expect_symbol(")");
      stmt.rows.push_back(std::move(row));
    } while (accept_symbol(","));
    return stmt;
  }

  Statement parse_update() {
    expect_keyword("UPDATE");
    UpdateStmt stmt;
    stmt.table = expect_ident("table name");
    expect_keyword("SET");
    do {
      std::string col = expect_ident("column name");
      expect_symbol("=");
      stmt.assignments.emplace_back(std::move(col), parse_expr());
    } while (accept_symbol(","));
    if (accept_keyword("WHERE")) stmt.where = parse_expr();
    return stmt;
  }

  Statement parse_delete() {
    expect_keyword("DELETE");
    expect_keyword("FROM");
    DeleteStmt stmt;
    stmt.table = expect_ident("table name");
    if (accept_keyword("WHERE")) stmt.where = parse_expr();
    return stmt;
  }

  Statement parse_drop() {
    expect_keyword("DROP");
    expect_keyword("TABLE");
    DropTableStmt stmt;
    if (accept_keyword("IF")) {
      expect_keyword("EXISTS");
      stmt.if_exists = true;
    }
    stmt.table = expect_ident("table name");
    return stmt;
  }

  // --- expressions (precedence climbing) -------------------------------
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs,
                      support::SourceLoc loc) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->bin_op = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    e->loc = loc;
    return e;
  }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (peek().is_keyword("OR")) {
      const auto loc = advance().loc;
      lhs = make_binary(BinOp::kOr, std::move(lhs), parse_and(), loc);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_not();
    while (peek().is_keyword("AND")) {
      const auto loc = advance().loc;
      lhs = make_binary(BinOp::kAnd, std::move(lhs), parse_not(), loc);
    }
    return lhs;
  }

  ExprPtr parse_not() {
    if (peek().is_keyword("NOT")) {
      const auto loc = advance().loc;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->un_op = UnOp::kNot;
      e->lhs = parse_not();
      e->loc = loc;
      return e;
    }
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    ExprPtr lhs = parse_additive();
    // IS [NOT] NULL / [NOT] IN / [NOT] LIKE postfix forms.
    if (peek().is_keyword("IS")) {
      const auto loc = advance().loc;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kIsNull;
      e->negated = accept_keyword("NOT");
      expect_keyword("NULL");
      e->lhs = std::move(lhs);
      e->loc = loc;
      return e;
    }
    bool negated = false;
    if (peek().is_keyword("NOT") &&
        (peek(1).is_keyword("IN") || peek(1).is_keyword("LIKE"))) {
      advance();
      negated = true;
    }
    if (peek().is_keyword("IN")) {
      const auto loc = advance().loc;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kInList;
      e->negated = negated;
      e->lhs = std::move(lhs);
      e->loc = loc;
      expect_symbol("(");
      do {
        e->args.push_back(parse_expr());
      } while (accept_symbol(","));
      expect_symbol(")");
      return e;
    }
    if (peek().is_keyword("LIKE")) {
      const auto loc = advance().loc;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kLike;
      e->negated = negated;
      e->lhs = std::move(lhs);
      e->rhs = parse_additive();
      e->loc = loc;
      return e;
    }
    if (negated) {
      throw ParseError("expected IN or LIKE after NOT", peek().loc);
    }

    struct OpMap {
      const char* sym;
      BinOp op;
    };
    static constexpr OpMap kOps[] = {
        {"=", BinOp::kEq},  {"<>", BinOp::kNe}, {"!=", BinOp::kNe},
        {"<=", BinOp::kLe}, {">=", BinOp::kGe}, {"<", BinOp::kLt},
        {">", BinOp::kGt},
    };
    for (const auto& [sym, op] : kOps) {
      if (peek().is_symbol(sym)) {
        const auto loc = advance().loc;
        return make_binary(op, std::move(lhs), parse_additive(), loc);
      }
    }
    return lhs;
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (peek().is_symbol("+") || peek().is_symbol("-")) {
      const BinOp op = peek().is_symbol("+") ? BinOp::kAdd : BinOp::kSub;
      const auto loc = advance().loc;
      lhs = make_binary(op, std::move(lhs), parse_multiplicative(), loc);
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (peek().is_symbol("*") || peek().is_symbol("/") || peek().is_symbol("%")) {
      BinOp op = BinOp::kMul;
      if (peek().is_symbol("/")) op = BinOp::kDiv;
      if (peek().is_symbol("%")) op = BinOp::kMod;
      const auto loc = advance().loc;
      lhs = make_binary(op, std::move(lhs), parse_unary(), loc);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (peek().is_symbol("-")) {
      const auto loc = advance().loc;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->un_op = UnOp::kNeg;
      e->lhs = parse_unary();
      e->loc = loc;
      return e;
    }
    if (peek().is_symbol("+")) {
      advance();
      return parse_unary();
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& tok = peek();
    auto e = std::make_unique<Expr>();
    e->loc = tok.loc;

    switch (tok.kind) {
      case TokenKind::kIntLit:
        e->kind = Expr::Kind::kLiteral;
        e->literal = Value::integer(advance().int_value);
        return e;
      case TokenKind::kFloatLit:
        e->kind = Expr::Kind::kLiteral;
        e->literal = Value::real(advance().float_value);
        return e;
      case TokenKind::kStringLit:
        e->kind = Expr::Kind::kLiteral;
        e->literal = Value::text(advance().text);
        return e;
      case TokenKind::kSymbol:
        if (tok.is_symbol("?")) {
          advance();
          e->kind = Expr::Kind::kParam;
          e->param_index = next_param_++;
          return e;
        }
        if (tok.is_symbol("(")) {
          advance();
          if (peek().is_keyword("SELECT")) {
            e->kind = Expr::Kind::kSubquery;
            e->subquery = std::make_unique<SelectStmt>(parse_select());
            expect_symbol(")");
            return e;
          }
          ExprPtr inner = parse_expr();
          expect_symbol(")");
          return inner;
        }
        break;
      case TokenKind::kIdent: {
        if (tok.is_keyword("NULL")) {
          advance();
          e->kind = Expr::Kind::kLiteral;
          e->literal = Value::null();
          return e;
        }
        if (tok.is_keyword("TRUE") || tok.is_keyword("FALSE")) {
          e->kind = Expr::Kind::kLiteral;
          e->literal = Value::boolean(advance().is_keyword("TRUE"));
          return e;
        }
        if (tok.is_keyword("DATETIME") && peek(1).kind == TokenKind::kStringLit) {
          advance();
          const Token& lit = advance();
          const auto parsed = parse_datetime(lit.text);
          if (!parsed) {
            throw ParseError(support::cat("malformed DATETIME literal '",
                                          lit.text, "'"),
                             lit.loc);
          }
          e->kind = Expr::Kind::kLiteral;
          e->literal = Value::datetime(*parsed);
          return e;
        }
        // Reserved words cannot start a primary expression; catching them
        // here turns "SELECT a, FROM t" into a syntax error instead of a
        // column named FROM.
        for (const char* reserved :
             {"FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
              "OFFSET", "JOIN", "INNER", "CROSS", "ON", "SELECT", "INSERT",
              "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "DROP",
              "TABLE", "INDEX", "AS", "ASC", "DESC", "UNION", "PRIMARY"}) {
          if (tok.is_keyword(reserved)) {
            throw ParseError(support::cat("unexpected keyword '", tok.text, "'"),
                             tok.loc);
          }
        }
        std::string name = advance().text;
        if (accept_symbol("(")) {
          e->kind = Expr::Kind::kFuncCall;
          e->func = support::to_upper(name);
          if (accept_symbol("*")) {
            e->star_arg = true;
            expect_symbol(")");
            return e;
          }
          if (accept_keyword("DISTINCT")) e->distinct_arg = true;
          if (!accept_symbol(")")) {
            do {
              e->args.push_back(parse_expr());
            } while (accept_symbol(","));
            expect_symbol(")");
          }
          return e;
        }
        e->kind = Expr::Kind::kColumnRef;
        if (accept_symbol(".")) {
          e->table = std::move(name);
          e->column = expect_ident("column name");
        } else {
          e->column = std::move(name);
        }
        return e;
      }
      default:
        break;
    }
    throw ParseError(support::cat("unexpected token '", tok.text, "'"), tok.loc);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::size_t next_param_ = 0;
};

}  // namespace

std::vector<Statement> parse_sql(std::string_view source) {
  return Parser(source).parse_script();
}

Statement parse_single(std::string_view source) {
  return Parser(source).parse_one();
}

}  // namespace kojak::db::sql
