#ifndef KOJAK_DB_SQL_EXPR_VM_HPP
#define KOJAK_DB_SQL_EXPR_VM_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "db/sql/ast.hpp"
#include "db/table.hpp"
#include "db/value.hpp"

namespace kojak::db::sql {

/// Old-expression-node → new-expression-node map produced by a plan-carrying
/// clone: `SelectStmt::clone(&map)` records every Expr it copies, so plan
/// annotations (whose `const Expr*` members reference the source tree) can be
/// re-targeted onto the copy — or, inverted, back-propagated from an executed
/// copy onto the original statement.
using ExprRemap = std::unordered_map<const Expr*, const Expr*>;

/// SQL LIKE with '%' (any run) and '_' (single char). Shared by the row-path
/// interpreter and the batch VM so both agree on every pattern.
[[nodiscard]] bool like_match(std::string_view text, std::string_view pattern);

/// A scalar expression compiled to a register-based batch program over one
/// columnar base table.
///
/// Execution model: registers are 1024-lane typed vectors (int64 / double /
/// string lanes mirroring `Table::ColumnSlice`) plus a validity bitmap —
/// SQL three-valued NULL semantics are carried per lane. Every instruction
/// writes all lanes of its batch eagerly; laziness in the source semantics
/// (AND/OR short-circuit, IIF arms, COALESCE chains) only matters for
/// side-effects, and the only side-effects are the errors raised by `/`,
/// `%` and SQRT — those instructions carry a *demand mask* refined at each
/// control point so an error is raised exactly when the row-path interpreter
/// would have raised one. (When several lanes would error, which error text
/// surfaces first may differ: the VM is instruction-major where the row path
/// is row-major. Both paths still throw.)
///
/// Static typing: compilation infers one `ValueType` per register by
/// replicating the interpreter's dynamic typing rules. Shapes whose result
/// type is not statically fixed (mixed int/double IIF arms, NOT over a
/// non-bool, incomparable comparison operands, ...) are *declined* —
/// `compile` returns nullptr and the statement stays on the row path, which
/// raises its usual per-row diagnostics. A NULL-typed operand folds at
/// compile time wherever the interpreter would propagate NULL.
///
/// Parameters and scalar subqueries become runtime-constant slots: the
/// program records the `ValueType` each slot had at compile time and
/// `bind_constants` re-evaluates them per execution — a non-NULL runtime
/// value of a different type declines that execution (row path fallback),
/// NULL is always acceptable (an all-NULL lane).
class ExprProgram {
 public:
  static constexpr std::size_t kBatch = 1024;
  static constexpr std::uint32_t kNoPayload = 0xffffffffu;

  enum class Op : std::uint8_t {
    kLoadColumn,       // dest <- view over columns[payload] at batch offset
    kLoadConst,        // dest <- broadcast constants[payload]
    kNegI,             // dest = -a            (int lanes)
    kNegD,             // dest = -num(a)       (double lanes)
    kNot,              // dest = !a            (bool lanes)
    kAddI, kSubI, kMulI, kModI,          // both-int arithmetic; kModI throws
    kAddD, kSubD, kMulD, kDivD, kModD,   // double arithmetic; kDivD/kModD throw
    kConcat,           // dest = a + b         (string lanes)
    kCmp,              // dest = compare_sql(a, b) under `cmp` (bool lanes)
    kAnd, kOr,         // three-valued logic over bool lanes
    kIsNull,           // dest = a IS [NOT] NULL        (flag = negated)
    kLike,             // dest = a LIKE b               (flag = negated)
    kInList,           // dest = a IN (constant slots)  (flag = negated)
    kIif,              // dest = (a valid && true) ? b : c
    kMergeValid,       // dest = a valid ? a : b        (COALESCE step)
    kNullIf,           // dest = a, NULL where compare_sql(a, b) == 0
    kExtremum,         // dest = LEAST/GREATEST(arg regs)  (flag = want_min)
    kAbsI, kAbsD,      // int / double ABS
    kSqrt,             // throws on negative input
    kFloorD, kCeilD,   // numeric -> double
    kRound,            // payload = const slot of digits (kNoPayload = 0)
    kLength, kUpper, kLower,
    kMaskSeed,         // dest mask <- demand bitmap (all-ones when absent)
    kMaskAndTrue,      // dest = a & (b valid && true)
    kMaskAndNotTrue,   // dest = a & !(b valid && true)
    kMaskAndNotFalse,  // dest = a & !(b valid && false)
    kMaskAndInvalid,   // dest = a & !b.valid
  };

  struct Instr {
    Op op;
    std::uint16_t dest = 0;
    std::uint16_t a = 0xffff, b = 0xffff, c = 0xffff;
    std::uint16_t m = 0xffff;      // demand mask register for throwing ops
    ValueType at = ValueType::kNull;  // operand lane types where dispatch
    ValueType bt = ValueType::kNull;  // depends on them (kCmp, kNullIf, ...)
    BinOp cmp = BinOp::kEq;
    std::uint32_t payload = kNoPayload;  // column / const slot / arg list
    bool flag = false;
  };

  /// A runtime-constant slot: a literal (expr == nullptr for the canonical
  /// NULL register, value baked in) or a param / scalar-subquery expression
  /// re-evaluated per execution. `type` is the lane type recorded at
  /// compile time; plan remapping translates `expr` across `clone()`.
  struct ConstSlot {
    const Expr* expr = nullptr;
    ValueType type = ValueType::kNull;
    Value literal;       // valid when literal_baked
    bool literal_baked = false;
  };

  /// Per-execution constant bindings (`bind_constants` result).
  using Bound = std::vector<Value>;

  /// Reusable per-thread batch workspace. Owned register storage is
  /// allocated lazily on first use and reused across batches; constant
  /// registers are re-broadcast only when the bound constants change.
  struct Scratch {
    struct RegBuf {
      std::vector<std::int64_t> i;
      std::vector<double> d;
      std::vector<std::string> s;
      std::vector<std::uint8_t> valid;
    };
    std::vector<RegBuf> bufs;
    struct View {
      const std::int64_t* i = nullptr;
      const double* d = nullptr;
      const std::string* s = nullptr;
      const std::uint8_t* valid = nullptr;
    };
    std::vector<View> views;
    std::vector<std::uint8_t> ones;     // all-demanded mask seed
    const void* const_tag = nullptr;    // Bound the const regs are filled for
  };

  /// Root-register view for the lanes of the batch just executed.
  struct Result {
    ValueType type = ValueType::kNull;
    const std::int64_t* ints = nullptr;
    const double* reals = nullptr;
    const std::string* strs = nullptr;
    const std::uint8_t* valid = nullptr;

    /// Wraps the result as a ColumnSlice (batch-relative lanes) so the
    /// existing aggregate / group-key kernels consume it unchanged.
    [[nodiscard]] Table::ColumnSlice as_slice(std::size_t lanes) const {
      Table::ColumnSlice s;
      s.ints = ints;
      s.reals = reals;
      s.strs = strs;
      s.valid = valid;
      s.size = lanes;
      return s;
    }
  };

  /// Resolves compile-time values for params and scalar subqueries; nullopt
  /// records the slot as NULL-typed (used by explain, where no values
  /// exist — real executions then decline at bind time if the runtime
  /// value is non-NULL of another type).
  using ConstantValueFn = std::function<std::optional<Value>(const Expr&)>;

  /// Compiles `root` against a base table whose binder slots start at
  /// `base_slot` and whose schema is `column_types`. Returns nullptr when
  /// any sub-shape falls outside the VM (the caller keeps the row path).
  [[nodiscard]] static std::shared_ptr<const ExprProgram> compile(
      const Expr& root, std::size_t base_slot,
      std::span<const ValueType> column_types,
      const ConstantValueFn& constant_value);

  [[nodiscard]] ValueType result_type() const noexcept { return root_type_; }

  /// Columns the program loads (base-relative, sorted, unique).
  [[nodiscard]] const std::vector<std::size_t>& used_columns() const noexcept {
    return used_columns_;
  }

  /// Evaluates every runtime-constant slot with `eval` and validates the
  /// result types against compile-time expectations. nullopt = declined
  /// (this execution falls back to the row path).
  [[nodiscard]] std::optional<Bound> bind_constants(
      const std::function<Value(const Expr&)>& eval) const;

  /// Executes the program over lanes [begin, end) of one partition.
  /// `columns` is indexed by base-relative column index (only
  /// `used_columns()` entries are read). `demand` is the partition-wide
  /// bitmap of lanes the row-path interpreter would have evaluated (live
  /// bits for WHERE / join keys, the selection bitmap for aggregate
  /// arguments); errors are raised only on demanded lanes. nullptr = all
  /// demanded. Result lanes are batch-relative (lane 0 == `begin`); lanes
  /// outside the demand set hold unspecified values.
  Result run(Scratch& scratch, const Bound& bound,
             std::span<const Table::ColumnSlice> columns,
             const std::uint8_t* demand, std::size_t begin,
             std::size_t end) const;

  /// Copies the program with every constant-slot expression pointer
  /// translated through `map` (plan carry across `SelectStmt::clone`).
  /// Returns nullptr when a pointer is missing from the map.
  [[nodiscard]] std::shared_ptr<const ExprProgram> remapped(
      const ExprRemap& map) const;

 private:
  friend class ProgramBuilder;

  std::vector<Instr> instrs_;
  std::vector<ConstSlot> consts_;
  std::vector<std::vector<std::uint16_t>> arg_lists_;  // kExtremum reg ids
  std::vector<std::vector<std::uint32_t>> slot_lists_; // kInList const slots
  std::vector<ValueType> reg_types_;
  std::vector<std::size_t> used_columns_;
  std::uint16_t root_reg_ = 0;
  ValueType root_type_ = ValueType::kNull;
};

}  // namespace kojak::db::sql

#endif  // KOJAK_DB_SQL_EXPR_VM_HPP
