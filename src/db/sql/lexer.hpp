#ifndef KOJAK_DB_SQL_LEXER_HPP
#define KOJAK_DB_SQL_LEXER_HPP

#include <string_view>
#include <vector>

#include "db/sql/token.hpp"

namespace kojak::db::sql {

/// Tokenizes a SQL script. Supports: identifiers (letters, digits, '_',
/// starting with a letter or '_'), integer and float literals, single-quoted
/// strings with doubled-quote escapes, `--` line comments, and the operator
/// set of the engine's SQL subset. Throws support::ParseError on malformed
/// input (unterminated string, stray character).
[[nodiscard]] std::vector<Token> lex_sql(std::string_view source);

}  // namespace kojak::db::sql

#endif  // KOJAK_DB_SQL_LEXER_HPP
