#ifndef KOJAK_DB_DATABASE_HPP
#define KOJAK_DB_DATABASE_HPP

#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "db/result.hpp"
#include "db/sql/ast.hpp"
#include "db/table.hpp"

namespace kojak::db {

/// A statement parsed once and executable many times with different `?`
/// parameters (the import path prepares one INSERT per table).
class PreparedStatement {
 public:
  explicit PreparedStatement(sql::Statement stmt) : stmt_(std::move(stmt)) {}
  [[nodiscard]] const sql::Statement& ast() const noexcept { return stmt_; }
  [[nodiscard]] sql::Statement& ast() noexcept { return stmt_; }

 private:
  sql::Statement stmt_;
};

/// The embedded relational engine: a catalog of tables plus a SQL executor.
/// Not thread-safe for concurrent mutation; concurrent read-only SELECTs of
/// *distinct* prepared statements are safe after a warm-up bind.
class Database {
 public:
  Table& create_table(TableSchema schema);
  /// Returns false when the table does not exist.
  bool drop_table(std::string_view name);
  [[nodiscard]] Table* find_table(std::string_view name);
  [[nodiscard]] const Table* find_table(std::string_view name) const;
  /// Checked lookup; throws support::EvalError when missing.
  [[nodiscard]] Table& table(std::string_view name);
  [[nodiscard]] const Table& table(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> table_names() const;

  /// Parses and executes a script of `;`-separated statements, returning the
  /// result of the last one.
  QueryResult execute(std::string_view sql_text, std::span<const Value> params = {});

  QueryResult execute(sql::Statement& stmt, std::span<const Value> params = {});

  [[nodiscard]] PreparedStatement prepare(std::string_view sql_text) const;
  QueryResult execute(PreparedStatement& stmt, std::span<const Value> params = {});

  /// Total live rows across all tables (bench bookkeeping).
  [[nodiscard]] std::size_t total_rows() const;

 private:
  struct CaseInsensitiveLess {
    bool operator()(const std::string& a, const std::string& b) const;
  };
  std::map<std::string, std::unique_ptr<Table>, CaseInsensitiveLess> tables_;
};

}  // namespace kojak::db

#endif  // KOJAK_DB_DATABASE_HPP
