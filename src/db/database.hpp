#ifndef KOJAK_DB_DATABASE_HPP
#define KOJAK_DB_DATABASE_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "db/result.hpp"
#include "db/sql/ast.hpp"
#include "db/table.hpp"

namespace kojak::db {

/// A statement parsed once and executable many times with different `?`
/// parameters (the import path prepares one INSERT per table).
class PreparedStatement {
 public:
  explicit PreparedStatement(sql::Statement stmt) : stmt_(std::move(stmt)) {}
  [[nodiscard]] const sql::Statement& ast() const noexcept { return stmt_; }
  [[nodiscard]] sql::Statement& ast() noexcept { return stmt_; }

 private:
  sql::Statement stmt_;
};

/// The embedded relational engine: a catalog of tables plus a SQL executor.
/// Not thread-safe for concurrent mutation; concurrent read-only SELECTs of
/// *distinct* prepared statements are safe after a warm-up bind.
class Database {
 public:
  Table& create_table(TableSchema schema);
  /// Returns false when the table does not exist.
  bool drop_table(std::string_view name);
  [[nodiscard]] Table* find_table(std::string_view name);
  [[nodiscard]] const Table* find_table(std::string_view name) const;
  /// Checked lookup; throws support::EvalError when missing.
  [[nodiscard]] Table& table(std::string_view name);
  [[nodiscard]] const Table& table(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> table_names() const;

  /// Physical layout of one catalog table — the stable metadata surface
  /// query compilers plan against (the partition-union rewrite reads the
  /// spec to emit one `PARTITION (k)`-pinned CTE per partition). `partition`
  /// is absent for single-heap tables; `partitions` is always >= 1.
  struct TableLayout {
    std::string table;  ///< declared spelling
    std::optional<PartitionSpec> partition;
    std::size_t partitions = 1;
    /// Declared spelling of the partition column; empty when unpartitioned.
    std::string partition_column;
  };
  /// Layout of `name`, or nullopt when the table does not exist.
  [[nodiscard]] std::optional<TableLayout> table_layout(
      std::string_view name) const;
  /// Layouts of every catalog table, in catalog (case-insensitive name)
  /// order.
  [[nodiscard]] std::vector<TableLayout> table_layouts() const;
  /// Deterministic content hash of the whole catalog layout: table names
  /// plus their partition specs. Two databases with the same tables and the
  /// same partitioning fingerprint equal; re-partitioning any table changes
  /// it. Compiled-plan caches key on this so a plan compiled against one
  /// layout is never replayed against another.
  [[nodiscard]] std::uint64_t layout_fingerprint() const;

  /// Parses and executes a script of `;`-separated statements, returning the
  /// result of the last one.
  QueryResult execute(std::string_view sql_text, std::span<const Value> params = {});

  QueryResult execute(sql::Statement& stmt, std::span<const Value> params = {});

  /// Parses exactly one statement for repeated execution. A script with
  /// more than one `;`-separated statement is a diagnostic error here (a
  /// prepared statement IS one statement; scripts go through execute()).
  [[nodiscard]] PreparedStatement prepare(std::string_view sql_text) const;
  QueryResult execute(PreparedStatement& stmt, std::span<const Value> params = {});

  /// One externally-materialized CTE handed to execute_select_with. The
  /// distributed coordinator executes `part<K>` shard bodies on workers and
  /// injects the gathered rows here; the executor skips the matching WITH
  /// entries and resolves their names to the injected results instead.
  /// `rows` must outlive the call.
  struct InjectedCte {
    std::string_view name;
    const QueryResult* rows = nullptr;
  };
  /// Executes `stmt` with some of its WITH entries pre-materialized. CTEs
  /// whose names are absent from `injected` materialize as usual; names in
  /// `injected` that match no WITH entry are simply additional visible
  /// derived tables. The residual coordinator expressions (scalar
  /// subqueries over the injected names) execute unchanged, so the result
  /// is byte-identical to a plain execute() of the same statement.
  QueryResult execute_select_with(sql::SelectStmt& stmt,
                                  std::span<const Value> params,
                                  std::span<const InjectedCte> injected);

  /// Fused-eligibility diagnostics: parses `sql_text` and reports, per
  /// SELECT statement and per WITH entry, whether the columnar fused
  /// evaluator (and the expression VM) would take it or why it stays on the
  /// row path. Analysis only — nothing executes, no plan annotation is
  /// cached, parameters are assumed NULL. Non-SELECT statements report
  /// "not a SELECT".
  struct FusedExplain {
    std::string statement;  // CTE name, or "main"
    std::string verdict;
  };
  [[nodiscard]] std::vector<FusedExplain> explain_fused(
      std::string_view sql_text);

  /// Total live rows across all tables (bench bookkeeping).
  [[nodiscard]] std::size_t total_rows() const;

  // --- epochs and snapshots -------------------------------------------------
  // The store epoch is the sum of every catalog table's table_version(): a
  // monotonic data version that advances by >= 1 on any row mutation
  // anywhere in the catalog. Online monitoring pins analysis passes to an
  // epoch: an analyzer holds a ReadSnapshot (shared lock) for a whole pass
  // while an ingest writer takes the WriteGate (exclusive lock) per batch,
  // so readers always see batch-aligned, consistent data. The gate is
  // advisory — the raw execute() paths do not take it — but every monitoring
  // participant (cosy::Monitor, bulk db_import) goes through it.
  [[nodiscard]] std::uint64_t store_epoch() const noexcept {
    std::uint64_t epoch = 0;
    for (const auto& [name, table] : tables_) epoch += table->table_version();
    return epoch;
  }

  /// Shared-reader pin: holds the store gate in shared mode so ingest
  /// batches (which take the exclusive WriteGate) cannot interleave with an
  /// analysis pass. `epoch()` is the store epoch observed at acquisition
  /// and stays valid for the snapshot's lifetime.
  class ReadSnapshot {
   public:
    [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

   private:
    friend class Database;
    ReadSnapshot(std::shared_mutex& gate, const Database& db) : lock_(gate) {
      epoch_ = db.store_epoch();
    }
    std::shared_lock<std::shared_mutex> lock_;
    std::uint64_t epoch_ = 0;
  };
  /// Exclusive-writer pin for one ingest batch; blocks until all snapshots
  /// are released and excludes new ones until destruction.
  class WriteGate {
   public:
   private:
    friend class Database;
    explicit WriteGate(std::shared_mutex& gate) : lock_(gate) {}
    std::unique_lock<std::shared_mutex> lock_;
  };
  [[nodiscard]] ReadSnapshot snapshot() const {
    return ReadSnapshot(*store_gate_, *this);
  }
  [[nodiscard]] WriteGate write_gate() { return WriteGate(*store_gate_); }

  /// Knobs of the parallel partition-scan path. An unpruned full scan of a
  /// table with more than one partition fans its partitions out across a
  /// dedicated scan pool when the partitions hold at least
  /// `min_parallel_rows` live rows; results merge in partition order, so
  /// parallel and serial scans produce identical row streams.
  struct ScanConfig {
    /// Worker cap per scan: 0 = hardware concurrency, 1 = always serial.
    std::size_t threads = 0;
    /// Minimum live rows across the scanned partitions before the scan
    /// pays thread-dispatch overhead.
    std::size_t min_parallel_rows = 4096;
  };
  void set_scan_config(ScanConfig config) noexcept { scan_config_ = config; }
  [[nodiscard]] const ScanConfig& scan_config() const noexcept {
    return scan_config_;
  }

  /// Executor-side accounting, observable across statements. The counters
  /// are atomics (concurrent read-only SELECTs of distinct prepared
  /// statements are allowed) and monotonic; callers snapshot before/after a
  /// statement and diff. Tests pin the single-materialization contract of
  /// CTEs, the uncorrelated-subquery memo, and the partition-scan planner
  /// (pruning + parallel batches) on these.
  struct ExecStatsSnapshot {
    std::uint64_t subquery_executions = 0;  ///< scalar-subquery plans run
    std::uint64_t subquery_memo_hits = 0;   ///< served from the per-statement memo
    std::uint64_t cte_materializations = 0; ///< WITH entries materialized
    std::uint64_t partition_scans = 0;      ///< partition heaps scanned by base scans
    std::uint64_t partitions_pruned = 0;    ///< partitions skipped via routing
    std::uint64_t parallel_scan_batches = 0;///< multi-partition scans run on the pool
    /// CTEs materialized concurrently on the scan pool (independent WITH
    /// entries of one statement execution; the serial path never bumps it).
    std::uint64_t cte_parallel_materializations = 0;
    /// Full-table aggregate subqueries a compiler rewrote into a
    /// per-partition CTE union against this database's layout (bumped by
    /// cosy::WholeConditionCompiler at compile time, once per rewritten
    /// aggregate site; plan-cache hits do not recompile and do not recount).
    std::uint64_t partition_union_rewrites = 0;
    /// Distributed scatter/gather accounting, bumped by db::Coordinator
    /// against the coordinator-session database: shard tasks handed to
    /// workers, re-attempts after a worker failure, duplicate dispatches of
    /// shards whose primary worker blew the deadline, and worker-side
    /// failures observed (injected or real).
    std::uint64_t shards_dispatched = 0;
    std::uint64_t shard_retries = 0;
    std::uint64_t straggler_reissues = 0;
    std::uint64_t worker_failures = 0;
    /// Incremental re-evaluation accounting, bumped by the whole-condition
    /// pipeline when a cosy::ShardResultCache is attached: per-partition
    /// `part<K>` CTE results served from cache (partition version
    /// unchanged), recomputed because absent or stale, and — of the
    /// misses — those where a prior entry existed at an older version
    /// (the "dirty partition" recomputes an incremental pass pays for).
    std::uint64_t shard_cache_hits = 0;
    std::uint64_t shard_cache_misses = 0;
    std::uint64_t dirty_partitions_recomputed = 0;
    /// Whole statements served from the statement-level memo: every table
    /// the statement reads was at the version it last ran against, so the
    /// pass reused the stored result without issuing the statement at all.
    std::uint64_t statements_memoized = 0;
    /// Replica partitions re-synced by db::Coordinator because the replica
    /// was behind the source table's partition version at scatter time.
    std::uint64_t replica_refreshes = 0;
    /// Vectorized columnar accounting: partitions of STORAGE COLUMNAR
    /// tables scanned through the batch kernels instead of the row heap,
    /// fixed-width lane batches those scans processed, and live rows a
    /// selection bitmap filtered out before any aggregate kernel touched
    /// them (pruned partitions and tombstones do not count — only rows the
    /// row path would have materialized and then rejected in WHERE).
    std::uint64_t columnar_scans = 0;
    std::uint64_t vectorized_batches = 0;
    std::uint64_t rows_skipped_by_bitmap = 0;
    /// Statement executions served by a fused single-pass evaluator: the
    /// structural analysis (conjunct + aggregate descriptors) was reused
    /// from the statement's cached plan annotation instead of being
    /// re-derived from the AST.
    std::uint64_t fused_plan_evals = 0;
    /// Grouped vectorized accounting: statement executions served by the
    /// vectorized hash GROUP BY evaluator, and distinct groups those
    /// evaluations materialized (summed across partitions and executions).
    std::uint64_t grouped_vector_evals = 0;
    std::uint64_t groups_built = 0;
    /// Columnar hash equi-join accounting: hash tables built from a key
    /// column slice (validity- and tombstone-masked), and live+valid
    /// probe-side lanes fed through them.
    std::uint64_t hash_join_builds = 0;
    std::uint64_t join_lanes_probed = 0;
    /// Expression-VM accounting: bytecode programs compiled during fused
    /// plan analysis (WHERE filters, aggregate arguments, group keys, join
    /// keys — cached plans recompile nothing and recount nothing),
    /// program-executions (one per program per statement execution that
    /// took the compiled path), lane batches the VM interpreted, and total
    /// lanes across those batches.
    std::uint64_t expr_programs_compiled = 0;
    std::uint64_t expr_program_evals = 0;
    std::uint64_t expr_vm_batches = 0;
    std::uint64_t expr_vm_lanes = 0;
  };
  [[nodiscard]] ExecStatsSnapshot exec_stats() const noexcept {
    return {exec_stats_.subquery_executions.load(std::memory_order_relaxed),
            exec_stats_.subquery_memo_hits.load(std::memory_order_relaxed),
            exec_stats_.cte_materializations.load(std::memory_order_relaxed),
            exec_stats_.partition_scans.load(std::memory_order_relaxed),
            exec_stats_.partitions_pruned.load(std::memory_order_relaxed),
            exec_stats_.parallel_scan_batches.load(std::memory_order_relaxed),
            exec_stats_.cte_parallel_materializations.load(
                std::memory_order_relaxed),
            exec_stats_.partition_union_rewrites.load(
                std::memory_order_relaxed),
            exec_stats_.shards_dispatched.load(std::memory_order_relaxed),
            exec_stats_.shard_retries.load(std::memory_order_relaxed),
            exec_stats_.straggler_reissues.load(std::memory_order_relaxed),
            exec_stats_.worker_failures.load(std::memory_order_relaxed),
            exec_stats_.shard_cache_hits.load(std::memory_order_relaxed),
            exec_stats_.shard_cache_misses.load(std::memory_order_relaxed),
            exec_stats_.dirty_partitions_recomputed.load(
                std::memory_order_relaxed),
            exec_stats_.statements_memoized.load(std::memory_order_relaxed),
            exec_stats_.replica_refreshes.load(std::memory_order_relaxed),
            exec_stats_.columnar_scans.load(std::memory_order_relaxed),
            exec_stats_.vectorized_batches.load(std::memory_order_relaxed),
            exec_stats_.rows_skipped_by_bitmap.load(std::memory_order_relaxed),
            exec_stats_.fused_plan_evals.load(std::memory_order_relaxed),
            exec_stats_.grouped_vector_evals.load(std::memory_order_relaxed),
            exec_stats_.groups_built.load(std::memory_order_relaxed),
            exec_stats_.hash_join_builds.load(std::memory_order_relaxed),
            exec_stats_.join_lanes_probed.load(std::memory_order_relaxed),
            exec_stats_.expr_programs_compiled.load(std::memory_order_relaxed),
            exec_stats_.expr_program_evals.load(std::memory_order_relaxed),
            exec_stats_.expr_vm_batches.load(std::memory_order_relaxed),
            exec_stats_.expr_vm_lanes.load(std::memory_order_relaxed)};
  }

  // Internal: bumped by the executor (relaxed; telemetry only).
  void count_subquery_execution() noexcept {
    exec_stats_.subquery_executions.fetch_add(1, std::memory_order_relaxed);
  }
  void count_subquery_memo_hit() noexcept {
    exec_stats_.subquery_memo_hits.fetch_add(1, std::memory_order_relaxed);
  }
  void count_cte_materialization() noexcept {
    exec_stats_.cte_materializations.fetch_add(1, std::memory_order_relaxed);
  }
  void count_partition_scans(std::uint64_t n) noexcept {
    exec_stats_.partition_scans.fetch_add(n, std::memory_order_relaxed);
  }
  void count_partitions_pruned(std::uint64_t n) noexcept {
    exec_stats_.partitions_pruned.fetch_add(n, std::memory_order_relaxed);
  }
  void count_parallel_scan_batch() noexcept {
    exec_stats_.parallel_scan_batches.fetch_add(1, std::memory_order_relaxed);
  }
  void count_cte_parallel_materializations(std::uint64_t n) noexcept {
    exec_stats_.cte_parallel_materializations.fetch_add(
        n, std::memory_order_relaxed);
  }
  void count_partition_union_rewrite() noexcept {
    exec_stats_.partition_union_rewrites.fetch_add(1,
                                                   std::memory_order_relaxed);
  }
  void count_shards_dispatched(std::uint64_t n) noexcept {
    exec_stats_.shards_dispatched.fetch_add(n, std::memory_order_relaxed);
  }
  void count_shard_retry() noexcept {
    exec_stats_.shard_retries.fetch_add(1, std::memory_order_relaxed);
  }
  void count_straggler_reissue() noexcept {
    exec_stats_.straggler_reissues.fetch_add(1, std::memory_order_relaxed);
  }
  void count_worker_failure() noexcept {
    exec_stats_.worker_failures.fetch_add(1, std::memory_order_relaxed);
  }
  void count_shard_cache_hits(std::uint64_t n) noexcept {
    exec_stats_.shard_cache_hits.fetch_add(n, std::memory_order_relaxed);
  }
  void count_shard_cache_miss() noexcept {
    exec_stats_.shard_cache_misses.fetch_add(1, std::memory_order_relaxed);
  }
  void count_dirty_partition_recomputed() noexcept {
    exec_stats_.dirty_partitions_recomputed.fetch_add(
        1, std::memory_order_relaxed);
  }
  void count_statement_memoized() noexcept {
    exec_stats_.statements_memoized.fetch_add(1, std::memory_order_relaxed);
  }
  void count_replica_refreshes(std::uint64_t n) noexcept {
    exec_stats_.replica_refreshes.fetch_add(n, std::memory_order_relaxed);
  }
  void count_columnar_scans(std::uint64_t n) noexcept {
    exec_stats_.columnar_scans.fetch_add(n, std::memory_order_relaxed);
  }
  void count_vectorized_batches(std::uint64_t n) noexcept {
    exec_stats_.vectorized_batches.fetch_add(n, std::memory_order_relaxed);
  }
  void count_rows_skipped_by_bitmap(std::uint64_t n) noexcept {
    exec_stats_.rows_skipped_by_bitmap.fetch_add(n, std::memory_order_relaxed);
  }
  void count_fused_plan_eval() noexcept {
    exec_stats_.fused_plan_evals.fetch_add(1, std::memory_order_relaxed);
  }
  void count_grouped_vector_eval() noexcept {
    exec_stats_.grouped_vector_evals.fetch_add(1, std::memory_order_relaxed);
  }
  void count_groups_built(std::uint64_t n) noexcept {
    exec_stats_.groups_built.fetch_add(n, std::memory_order_relaxed);
  }
  void count_hash_join_build() noexcept {
    exec_stats_.hash_join_builds.fetch_add(1, std::memory_order_relaxed);
  }
  void count_join_lanes_probed(std::uint64_t n) noexcept {
    exec_stats_.join_lanes_probed.fetch_add(n, std::memory_order_relaxed);
  }
  void count_expr_programs_compiled(std::uint64_t n) noexcept {
    exec_stats_.expr_programs_compiled.fetch_add(n, std::memory_order_relaxed);
  }
  void count_expr_program_evals(std::uint64_t n) noexcept {
    exec_stats_.expr_program_evals.fetch_add(n, std::memory_order_relaxed);
  }
  void count_expr_vm_batch() noexcept {
    exec_stats_.expr_vm_batches.fetch_add(1, std::memory_order_relaxed);
  }
  void count_expr_vm_lanes(std::uint64_t n) noexcept {
    exec_stats_.expr_vm_lanes.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  struct ExecStats {
    std::atomic<std::uint64_t> subquery_executions{0};
    std::atomic<std::uint64_t> subquery_memo_hits{0};
    std::atomic<std::uint64_t> cte_materializations{0};
    std::atomic<std::uint64_t> partition_scans{0};
    std::atomic<std::uint64_t> partitions_pruned{0};
    std::atomic<std::uint64_t> parallel_scan_batches{0};
    std::atomic<std::uint64_t> cte_parallel_materializations{0};
    std::atomic<std::uint64_t> partition_union_rewrites{0};
    std::atomic<std::uint64_t> shards_dispatched{0};
    std::atomic<std::uint64_t> shard_retries{0};
    std::atomic<std::uint64_t> straggler_reissues{0};
    std::atomic<std::uint64_t> worker_failures{0};
    std::atomic<std::uint64_t> shard_cache_hits{0};
    std::atomic<std::uint64_t> shard_cache_misses{0};
    std::atomic<std::uint64_t> dirty_partitions_recomputed{0};
    std::atomic<std::uint64_t> statements_memoized{0};
    std::atomic<std::uint64_t> replica_refreshes{0};
    std::atomic<std::uint64_t> columnar_scans{0};
    std::atomic<std::uint64_t> vectorized_batches{0};
    std::atomic<std::uint64_t> rows_skipped_by_bitmap{0};
    std::atomic<std::uint64_t> fused_plan_evals{0};
    std::atomic<std::uint64_t> grouped_vector_evals{0};
    std::atomic<std::uint64_t> groups_built{0};
    std::atomic<std::uint64_t> hash_join_builds{0};
    std::atomic<std::uint64_t> join_lanes_probed{0};
    std::atomic<std::uint64_t> expr_programs_compiled{0};
    std::atomic<std::uint64_t> expr_program_evals{0};
    std::atomic<std::uint64_t> expr_vm_batches{0};
    std::atomic<std::uint64_t> expr_vm_lanes{0};

    // Snapshot copy/move so Database itself stays movable (nobody may be
    // executing against a Database while it is moved anyway).
    ExecStats() = default;
    ExecStats(const ExecStats& other) { *this = other; }
    ExecStats& operator=(const ExecStats& other) {
      const auto copy = [](std::atomic<std::uint64_t>& dst,
                           const std::atomic<std::uint64_t>& src) {
        dst.store(src.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      };
      copy(subquery_executions, other.subquery_executions);
      copy(subquery_memo_hits, other.subquery_memo_hits);
      copy(cte_materializations, other.cte_materializations);
      copy(partition_scans, other.partition_scans);
      copy(partitions_pruned, other.partitions_pruned);
      copy(parallel_scan_batches, other.parallel_scan_batches);
      copy(cte_parallel_materializations, other.cte_parallel_materializations);
      copy(partition_union_rewrites, other.partition_union_rewrites);
      copy(shards_dispatched, other.shards_dispatched);
      copy(shard_retries, other.shard_retries);
      copy(straggler_reissues, other.straggler_reissues);
      copy(worker_failures, other.worker_failures);
      copy(shard_cache_hits, other.shard_cache_hits);
      copy(shard_cache_misses, other.shard_cache_misses);
      copy(dirty_partitions_recomputed, other.dirty_partitions_recomputed);
      copy(statements_memoized, other.statements_memoized);
      copy(replica_refreshes, other.replica_refreshes);
      copy(columnar_scans, other.columnar_scans);
      copy(vectorized_batches, other.vectorized_batches);
      copy(rows_skipped_by_bitmap, other.rows_skipped_by_bitmap);
      copy(fused_plan_evals, other.fused_plan_evals);
      copy(grouped_vector_evals, other.grouped_vector_evals);
      copy(groups_built, other.groups_built);
      copy(hash_join_builds, other.hash_join_builds);
      copy(join_lanes_probed, other.join_lanes_probed);
      copy(expr_programs_compiled, other.expr_programs_compiled);
      copy(expr_program_evals, other.expr_program_evals);
      copy(expr_vm_batches, other.expr_vm_batches);
      copy(expr_vm_lanes, other.expr_vm_lanes);
      return *this;
    }
  };
  ExecStats exec_stats_;
  ScanConfig scan_config_;

  struct CaseInsensitiveLess {
    bool operator()(const std::string& a, const std::string& b) const;
  };
  std::map<std::string, std::unique_ptr<Table>, CaseInsensitiveLess> tables_;

  /// Fingerprint memo: the catalog only changes through create/drop (which
  /// bump the generation, under the single-writer contract), so
  /// layout_fingerprint() — called per evaluation by the plan-cache keying —
  /// re-hashes the catalog only after DDL. Atomics because concurrent
  /// read-only sessions may consult the fingerprint simultaneously; the
  /// race is benign (both writers store the same value for a generation).
  /// Snapshot copy/move like ExecStats, so Database itself stays movable.
  struct LayoutMemo {
    std::atomic<std::uint64_t> fingerprint{0};
    std::atomic<std::uint64_t> generation{~std::uint64_t{0}};  // = invalid

    LayoutMemo() = default;
    LayoutMemo(const LayoutMemo& other) { *this = other; }
    LayoutMemo& operator=(const LayoutMemo& other) {
      fingerprint.store(other.fingerprint.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      generation.store(other.generation.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      return *this;
    }
  };
  std::uint64_t catalog_generation_ = 0;
  mutable LayoutMemo layout_memo_;

  /// The snapshot/write-gate lock. unique_ptr keeps Database movable (a
  /// moved-from Database is dead weight; nobody holds its gate while it
  /// moves, matching the ExecStats contract above).
  mutable std::unique_ptr<std::shared_mutex> store_gate_ =
      std::make_unique<std::shared_mutex>();
};

}  // namespace kojak::db

#endif  // KOJAK_DB_DATABASE_HPP
