#ifndef KOJAK_DB_DATABASE_HPP
#define KOJAK_DB_DATABASE_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "db/result.hpp"
#include "db/sql/ast.hpp"
#include "db/table.hpp"

namespace kojak::db {

/// A statement parsed once and executable many times with different `?`
/// parameters (the import path prepares one INSERT per table).
class PreparedStatement {
 public:
  explicit PreparedStatement(sql::Statement stmt) : stmt_(std::move(stmt)) {}
  [[nodiscard]] const sql::Statement& ast() const noexcept { return stmt_; }
  [[nodiscard]] sql::Statement& ast() noexcept { return stmt_; }

 private:
  sql::Statement stmt_;
};

/// The embedded relational engine: a catalog of tables plus a SQL executor.
/// Not thread-safe for concurrent mutation; concurrent read-only SELECTs of
/// *distinct* prepared statements are safe after a warm-up bind.
class Database {
 public:
  Table& create_table(TableSchema schema);
  /// Returns false when the table does not exist.
  bool drop_table(std::string_view name);
  [[nodiscard]] Table* find_table(std::string_view name);
  [[nodiscard]] const Table* find_table(std::string_view name) const;
  /// Checked lookup; throws support::EvalError when missing.
  [[nodiscard]] Table& table(std::string_view name);
  [[nodiscard]] const Table& table(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> table_names() const;

  /// Parses and executes a script of `;`-separated statements, returning the
  /// result of the last one.
  QueryResult execute(std::string_view sql_text, std::span<const Value> params = {});

  QueryResult execute(sql::Statement& stmt, std::span<const Value> params = {});

  /// Parses exactly one statement for repeated execution. A script with
  /// more than one `;`-separated statement is a diagnostic error here (a
  /// prepared statement IS one statement; scripts go through execute()).
  [[nodiscard]] PreparedStatement prepare(std::string_view sql_text) const;
  QueryResult execute(PreparedStatement& stmt, std::span<const Value> params = {});

  /// Total live rows across all tables (bench bookkeeping).
  [[nodiscard]] std::size_t total_rows() const;

  /// Knobs of the parallel partition-scan path. An unpruned full scan of a
  /// table with more than one partition fans its partitions out across a
  /// dedicated scan pool when the partitions hold at least
  /// `min_parallel_rows` live rows; results merge in partition order, so
  /// parallel and serial scans produce identical row streams.
  struct ScanConfig {
    /// Worker cap per scan: 0 = hardware concurrency, 1 = always serial.
    std::size_t threads = 0;
    /// Minimum live rows across the scanned partitions before the scan
    /// pays thread-dispatch overhead.
    std::size_t min_parallel_rows = 4096;
  };
  void set_scan_config(ScanConfig config) noexcept { scan_config_ = config; }
  [[nodiscard]] const ScanConfig& scan_config() const noexcept {
    return scan_config_;
  }

  /// Executor-side accounting, observable across statements. The counters
  /// are atomics (concurrent read-only SELECTs of distinct prepared
  /// statements are allowed) and monotonic; callers snapshot before/after a
  /// statement and diff. Tests pin the single-materialization contract of
  /// CTEs, the uncorrelated-subquery memo, and the partition-scan planner
  /// (pruning + parallel batches) on these.
  struct ExecStatsSnapshot {
    std::uint64_t subquery_executions = 0;  ///< scalar-subquery plans run
    std::uint64_t subquery_memo_hits = 0;   ///< served from the per-statement memo
    std::uint64_t cte_materializations = 0; ///< WITH entries materialized
    std::uint64_t partition_scans = 0;      ///< partition heaps scanned by base scans
    std::uint64_t partitions_pruned = 0;    ///< partitions skipped via routing
    std::uint64_t parallel_scan_batches = 0;///< multi-partition scans run on the pool
  };
  [[nodiscard]] ExecStatsSnapshot exec_stats() const noexcept {
    return {exec_stats_.subquery_executions.load(std::memory_order_relaxed),
            exec_stats_.subquery_memo_hits.load(std::memory_order_relaxed),
            exec_stats_.cte_materializations.load(std::memory_order_relaxed),
            exec_stats_.partition_scans.load(std::memory_order_relaxed),
            exec_stats_.partitions_pruned.load(std::memory_order_relaxed),
            exec_stats_.parallel_scan_batches.load(std::memory_order_relaxed)};
  }

  // Internal: bumped by the executor (relaxed; telemetry only).
  void count_subquery_execution() noexcept {
    exec_stats_.subquery_executions.fetch_add(1, std::memory_order_relaxed);
  }
  void count_subquery_memo_hit() noexcept {
    exec_stats_.subquery_memo_hits.fetch_add(1, std::memory_order_relaxed);
  }
  void count_cte_materialization() noexcept {
    exec_stats_.cte_materializations.fetch_add(1, std::memory_order_relaxed);
  }
  void count_partition_scans(std::uint64_t n) noexcept {
    exec_stats_.partition_scans.fetch_add(n, std::memory_order_relaxed);
  }
  void count_partitions_pruned(std::uint64_t n) noexcept {
    exec_stats_.partitions_pruned.fetch_add(n, std::memory_order_relaxed);
  }
  void count_parallel_scan_batch() noexcept {
    exec_stats_.parallel_scan_batches.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  struct ExecStats {
    std::atomic<std::uint64_t> subquery_executions{0};
    std::atomic<std::uint64_t> subquery_memo_hits{0};
    std::atomic<std::uint64_t> cte_materializations{0};
    std::atomic<std::uint64_t> partition_scans{0};
    std::atomic<std::uint64_t> partitions_pruned{0};
    std::atomic<std::uint64_t> parallel_scan_batches{0};

    // Snapshot copy/move so Database itself stays movable (nobody may be
    // executing against a Database while it is moved anyway).
    ExecStats() = default;
    ExecStats(const ExecStats& other) { *this = other; }
    ExecStats& operator=(const ExecStats& other) {
      const auto copy = [](std::atomic<std::uint64_t>& dst,
                           const std::atomic<std::uint64_t>& src) {
        dst.store(src.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      };
      copy(subquery_executions, other.subquery_executions);
      copy(subquery_memo_hits, other.subquery_memo_hits);
      copy(cte_materializations, other.cte_materializations);
      copy(partition_scans, other.partition_scans);
      copy(partitions_pruned, other.partitions_pruned);
      copy(parallel_scan_batches, other.parallel_scan_batches);
      return *this;
    }
  };
  ExecStats exec_stats_;
  ScanConfig scan_config_;

  struct CaseInsensitiveLess {
    bool operator()(const std::string& a, const std::string& b) const;
  };
  std::map<std::string, std::unique_ptr<Table>, CaseInsensitiveLess> tables_;
};

}  // namespace kojak::db

#endif  // KOJAK_DB_DATABASE_HPP
