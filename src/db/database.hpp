#ifndef KOJAK_DB_DATABASE_HPP
#define KOJAK_DB_DATABASE_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "db/result.hpp"
#include "db/sql/ast.hpp"
#include "db/table.hpp"

namespace kojak::db {

/// A statement parsed once and executable many times with different `?`
/// parameters (the import path prepares one INSERT per table).
class PreparedStatement {
 public:
  explicit PreparedStatement(sql::Statement stmt) : stmt_(std::move(stmt)) {}
  [[nodiscard]] const sql::Statement& ast() const noexcept { return stmt_; }
  [[nodiscard]] sql::Statement& ast() noexcept { return stmt_; }

 private:
  sql::Statement stmt_;
};

/// The embedded relational engine: a catalog of tables plus a SQL executor.
/// Not thread-safe for concurrent mutation; concurrent read-only SELECTs of
/// *distinct* prepared statements are safe after a warm-up bind.
class Database {
 public:
  Table& create_table(TableSchema schema);
  /// Returns false when the table does not exist.
  bool drop_table(std::string_view name);
  [[nodiscard]] Table* find_table(std::string_view name);
  [[nodiscard]] const Table* find_table(std::string_view name) const;
  /// Checked lookup; throws support::EvalError when missing.
  [[nodiscard]] Table& table(std::string_view name);
  [[nodiscard]] const Table& table(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> table_names() const;

  /// Parses and executes a script of `;`-separated statements, returning the
  /// result of the last one.
  QueryResult execute(std::string_view sql_text, std::span<const Value> params = {});

  QueryResult execute(sql::Statement& stmt, std::span<const Value> params = {});

  [[nodiscard]] PreparedStatement prepare(std::string_view sql_text) const;
  QueryResult execute(PreparedStatement& stmt, std::span<const Value> params = {});

  /// Total live rows across all tables (bench bookkeeping).
  [[nodiscard]] std::size_t total_rows() const;

  /// Executor-side accounting, observable across statements. The counters
  /// are atomics (concurrent read-only SELECTs of distinct prepared
  /// statements are allowed) and monotonic; callers snapshot before/after a
  /// statement and diff. Tests pin the single-materialization contract of
  /// CTEs and the uncorrelated-subquery memo on these.
  struct ExecStatsSnapshot {
    std::uint64_t subquery_executions = 0;  ///< scalar-subquery plans run
    std::uint64_t subquery_memo_hits = 0;   ///< served from the per-statement memo
    std::uint64_t cte_materializations = 0; ///< WITH entries materialized
  };
  [[nodiscard]] ExecStatsSnapshot exec_stats() const noexcept {
    return {exec_stats_.subquery_executions.load(std::memory_order_relaxed),
            exec_stats_.subquery_memo_hits.load(std::memory_order_relaxed),
            exec_stats_.cte_materializations.load(std::memory_order_relaxed)};
  }

  // Internal: bumped by the executor (relaxed; telemetry only).
  void count_subquery_execution() noexcept {
    exec_stats_.subquery_executions.fetch_add(1, std::memory_order_relaxed);
  }
  void count_subquery_memo_hit() noexcept {
    exec_stats_.subquery_memo_hits.fetch_add(1, std::memory_order_relaxed);
  }
  void count_cte_materialization() noexcept {
    exec_stats_.cte_materializations.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  struct ExecStats {
    std::atomic<std::uint64_t> subquery_executions{0};
    std::atomic<std::uint64_t> subquery_memo_hits{0};
    std::atomic<std::uint64_t> cte_materializations{0};

    // Snapshot copy/move so Database itself stays movable (nobody may be
    // executing against a Database while it is moved anyway).
    ExecStats() = default;
    ExecStats(const ExecStats& other) { *this = other; }
    ExecStats& operator=(const ExecStats& other) {
      subquery_executions.store(
          other.subquery_executions.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      subquery_memo_hits.store(
          other.subquery_memo_hits.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      cte_materializations.store(
          other.cte_materializations.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      return *this;
    }
  };
  ExecStats exec_stats_;

  struct CaseInsensitiveLess {
    bool operator()(const std::string& a, const std::string& b) const;
  };
  std::map<std::string, std::unique_ptr<Table>, CaseInsensitiveLess> tables_;
};

}  // namespace kojak::db

#endif  // KOJAK_DB_DATABASE_HPP
