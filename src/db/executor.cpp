// Volcano-lite executor for the SQL subset: scans with index selection,
// (hash/indexed) equi-joins, filters, grouped aggregation, HAVING, DISTINCT,
// ORDER BY, LIMIT/OFFSET, and the DML statements. Lives behind
// Database::execute; there is no separate physical-plan IR — the statement
// AST plus binder annotations *is* the plan, which is adequate for the data
// volumes COSY manages (10^4..10^6 rows).

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <deque>
#include <future>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "db/database.hpp"
#include "db/sql/parser.hpp"
#include "db/sql/plan.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/thread_pool.hpp"

// The hot-plan annotations behind SelectStmt::fused_plan /
// fused_group_plan (sql::FusedScanPlan, sql::FusedGroupPlan) live in
// db/sql/plan.hpp so the clone machinery in ast.cpp can carry them across
// statement copies.

namespace kojak::db {

using sql::BinOp;
using sql::Expr;
using sql::UnOp;
using support::EvalError;

namespace {

// ---------------------------------------------------------------------------
// Parallel partition scans

/// Dedicated pool for partition scans and parallel CTE materialization,
/// separate from support::global_pool() — statements that themselves run on
/// global-pool workers (the sharded analysis backends) can block on these
/// futures without starving their own pool. Deadlock-freedom WITHIN this
/// pool rests on one protocol, not on tasks being leaves: every execution
/// dispatched onto the pool runs under an ExecEnv with `on_pool` set, and
/// both dispatch sites (run_heap_scan's partition fan-out and
/// materialize_ctes' dependency waves) go strictly serial when they see
/// that flag — a pool task never submits to the pool and blocks. Any new
/// pool user must follow the same rule.
support::ThreadPool& scan_pool() {
  static support::ThreadPool pool;
  return pool;
}

// ---------------------------------------------------------------------------
// CTE machinery

/// Materialized WITH entries visible to a statement, chained so subqueries
/// see the enclosing statement's CTEs. `entries` grows as the WITH clause
/// materializes left to right, which gives each CTE body exactly the
/// earlier siblings the parser validated against.
struct CteScope {
  const CteScope* parent = nullptr;
  std::vector<std::pair<std::string, const QueryResult*>> entries;

  [[nodiscard]] const QueryResult* find(std::string_view name) const {
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
      if (support::iequals(it->first, name)) return it->second;
    }
    return parent == nullptr ? nullptr : parent->find(name);
  }
  /// Entries visible through the whole chain; part of the subquery-memo key
  /// (a name can mean a table before a shadowing CTE materializes and the
  /// CTE afterwards — the count disambiguates the two moments).
  [[nodiscard]] std::size_t visible_count() const {
    return entries.size() +
           (parent == nullptr ? 0 : parent->visible_count());
  }
};

/// Per-top-level-statement execution state shared by every nested
/// execution: the uncorrelated-subquery memo. Structurally identical scalar
/// subqueries execute once per statement execution; later occurrences are
/// served from here (tests pin this via Database::exec_stats).
///
/// `on_pool` marks executions that already run on a scan-pool worker
/// (parallel CTE materialization): such executions must stay strictly
/// serial — submitting to the pool and blocking from inside a pool task is
/// how a fixed-size pool deadlocks on itself.
struct ExecEnv {
  std::unordered_map<std::string, Value> subquery_memo;
  bool on_pool = false;
};

// ---------------------------------------------------------------------------
// Name resolution

/// One FROM/JOIN source: a base table or a materialized CTE ("derived").
struct ScanSource {
  const Table* table = nullptr;          // base table, or
  const QueryResult* derived = nullptr;  // materialized CTE rows
  /// Validated `PARTITION (k)` selector: scans and probes of this source
  /// touch only partition k.
  std::optional<std::size_t> partition;
  std::string qualifier;
  std::size_t base_slot = 0;

  [[nodiscard]] std::size_t column_count() const {
    return table != nullptr ? table->schema().column_count()
                            : derived->column_count();
  }
  [[nodiscard]] std::optional<std::size_t> find_column(
      std::string_view name) const {
    if (table != nullptr) return table->schema().find_column(name);
    for (std::size_t i = 0; i < derived->columns.size(); ++i) {
      if (support::iequals(derived->columns[i], name)) return i;
    }
    return std::nullopt;
  }
  [[nodiscard]] std::string column_name(std::size_t i) const {
    return table != nullptr ? table->schema().column(i).name
                            : derived->columns[i];
  }
};

class Binder {
 public:
  Binder(Database& db, std::span<const Value> params) : db_(db), params_(params) {}

  std::vector<ScanSource> bind_sources(const sql::SelectStmt& stmt,
                                       const CteScope* ctes) {
    std::vector<ScanSource> sources;
    std::size_t slot = 0;
    const auto add = [&](const sql::TableRef& ref) {
      ScanSource source;
      // A CTE shadows a catalog table of the same name (standard scoping).
      if (const QueryResult* derived =
              ctes == nullptr ? nullptr : ctes->find(ref.table)) {
        if (ref.partition) {
          // Backstop for CTEs reaching here from an *enclosing* statement's
          // scope — same-statement selectors are already a parse error.
          throw EvalError(support::cat(
              "PARTITION selector on CTE '", ref.table,
              "' (partition selection applies to partitioned catalog "
              "tables, not temp results)"));
        }
        source.derived = derived;
      } else {
        source.table = db_.find_table(ref.table);
        if (source.table == nullptr) {
          throw EvalError(support::cat("unknown table '", ref.table, "'"));
        }
        if (ref.partition) {
          if (*ref.partition >= source.table->partition_count()) {
            throw EvalError(support::cat(
                "PARTITION selector ", *ref.partition, " out of range: table '",
                ref.table, "' has ", source.table->partition_count(),
                " partition(s)"));
          }
          source.partition = ref.partition;
        }
      }
      for (const ScanSource& s : sources) {
        if (support::iequals(s.qualifier, ref.qualifier())) {
          throw EvalError(support::cat("duplicate table alias '",
                                       ref.qualifier(), "'"));
        }
      }
      source.qualifier = ref.qualifier();
      source.base_slot = slot;
      slot += source.column_count();
      sources.push_back(std::move(source));
    };
    if (stmt.from) add(*stmt.from);
    for (const sql::Join& join : stmt.joins) add(join.table);
    return sources;
  }

  /// Resolves column refs to slots; validates functions and aggregate
  /// placement. `allow_aggregates` is false inside WHERE and ON.
  void bind_expr(Expr& e, const std::vector<ScanSource>& sources,
                 bool allow_aggregates, bool inside_aggregate = false) {
    switch (e.kind) {
      case Expr::Kind::kLiteral:
      case Expr::Kind::kAliasRef:
        return;
      case Expr::Kind::kParam:
        if (e.param_index >= params_.size()) {
          throw EvalError(support::cat("statement needs parameter #",
                                       e.param_index + 1, " but only ",
                                       params_.size(), " given"));
        }
        return;
      case Expr::Kind::kColumnRef: {
        resolve_column(e, sources);
        return;
      }
      case Expr::Kind::kUnary:
        bind_expr(*e.lhs, sources, allow_aggregates, inside_aggregate);
        return;
      case Expr::Kind::kBinary:
        bind_expr(*e.lhs, sources, allow_aggregates, inside_aggregate);
        bind_expr(*e.rhs, sources, allow_aggregates, inside_aggregate);
        return;
      case Expr::Kind::kIsNull:
        bind_expr(*e.lhs, sources, allow_aggregates, inside_aggregate);
        return;
      case Expr::Kind::kLike:
        bind_expr(*e.lhs, sources, allow_aggregates, inside_aggregate);
        bind_expr(*e.rhs, sources, allow_aggregates, inside_aggregate);
        return;
      case Expr::Kind::kInList:
        bind_expr(*e.lhs, sources, allow_aggregates, inside_aggregate);
        for (auto& arg : e.args) {
          bind_expr(*arg, sources, allow_aggregates, inside_aggregate);
        }
        return;
      case Expr::Kind::kSubquery:
        return;  // bound independently when materialized
      case Expr::Kind::kFuncCall: {
        if (is_aggregate_name(e.func)) {
          if (!allow_aggregates) {
            throw EvalError(support::cat("aggregate ", e.func,
                                         " not allowed in this clause"));
          }
          if (inside_aggregate) {
            throw EvalError("nested aggregates are not allowed");
          }
          if (!e.star_arg && e.args.size() != 1) {
            throw EvalError(support::cat(e.func, " expects exactly one argument"));
          }
          if (e.star_arg && e.func != "COUNT") {
            throw EvalError(support::cat(e.func, "(*) is not valid"));
          }
          for (auto& arg : e.args) {
            bind_expr(*arg, sources, allow_aggregates, /*inside_aggregate=*/true);
          }
          return;
        }
        validate_scalar_function(e);
        for (auto& arg : e.args) {
          bind_expr(*arg, sources, allow_aggregates, inside_aggregate);
        }
        return;
      }
    }
  }

  [[nodiscard]] static bool is_aggregate_name(std::string_view name) {
    return name == "COUNT" || name == "SUM" || name == "AVG" || name == "MIN" ||
           name == "MAX" || name == "STDDEV" || name == "VARIANCE";
  }

  static void validate_scalar_function(const Expr& e) {
    struct Fn {
      const char* name;
      std::size_t min_args;
      std::size_t max_args;
    };
    static constexpr Fn kFns[] = {
        {"ABS", 1, 1},    {"SQRT", 1, 1},   {"FLOOR", 1, 1}, {"CEIL", 1, 1},
        {"ROUND", 1, 2},  {"LENGTH", 1, 1}, {"UPPER", 1, 1}, {"LOWER", 1, 1},
        {"COALESCE", 1, sql::kMaxScalarFnArgs}, {"IIF", 3, 3},
        {"NULLIF", 2, 2}, {"LEAST", 2, sql::kMaxScalarFnArgs},
        {"GREATEST", 2, sql::kMaxScalarFnArgs},
    };
    for (const Fn& fn : kFns) {
      if (e.func == fn.name) {
        if (e.args.size() < fn.min_args || e.args.size() > fn.max_args) {
          throw EvalError(support::cat(e.func, " expects between ", fn.min_args,
                                       " and ", fn.max_args, " arguments"));
        }
        return;
      }
    }
    throw EvalError(support::cat("unknown function ", e.func));
  }

 private:
  void resolve_column(Expr& e, const std::vector<ScanSource>& sources) {
    std::size_t found_slot = static_cast<std::size_t>(-1);
    for (const ScanSource& s : sources) {
      if (!e.table.empty() && !support::iequals(e.table, s.qualifier)) continue;
      const auto col = s.find_column(e.column);
      if (!col) continue;
      if (found_slot != static_cast<std::size_t>(-1)) {
        throw EvalError(support::cat("ambiguous column '", e.column, "'"));
      }
      found_slot = s.base_slot + *col;
    }
    if (found_slot == static_cast<std::size_t>(-1)) {
      throw EvalError(support::cat("unknown column '",
                                   e.table.empty()
                                       ? e.column
                                       : e.table + "." + e.column,
                                   "'"));
    }
    e.resolved_slot = found_slot;
  }

  Database& db_;
  std::span<const Value> params_;
};

// ---------------------------------------------------------------------------
// Expression evaluation

struct EvalCtx {
  const Row* row = nullptr;
  std::span<const Value> params;
  const std::unordered_map<const Expr*, Value>* aggregates = nullptr;
  const std::unordered_map<const Expr*, Value>* subqueries = nullptr;
  const Row* output_row = nullptr;  // for kAliasRef in ORDER BY
  /// Values pinned onto specific expression nodes, consulted before ordinary
  /// evaluation: the grouped vectorized evaluator pins each compiled GROUP BY
  /// key expression to its per-group value (the synthesized representative
  /// row only carries plain-column keys).
  const std::unordered_map<const Expr*, Value>* pinned = nullptr;
};

using sql::like_match;  // one matcher shared with the batch VM (expr_vm.cpp)

Value eval_expr(const Expr& e, const EvalCtx& ctx);

Value eval_scalar_function(const Expr& e, const EvalCtx& ctx) {
  const auto arg = [&](std::size_t i) { return eval_expr(*e.args[i], ctx); };
  if (e.func == "COALESCE") {
    for (const auto& a : e.args) {
      Value v = eval_expr(*a, ctx);
      if (!v.is_null()) return v;
    }
    return Value::null();
  }
  if (e.func == "IIF") {
    const Value cond = arg(0);
    return (!cond.is_null() && cond.as_bool()) ? arg(1) : arg(2);
  }
  if (e.func == "NULLIF") {
    const Value a = arg(0);
    const Value b = arg(1);
    const auto cmp = Value::compare_sql(a, b);
    return (cmp && *cmp == 0) ? Value::null() : a;
  }
  if (e.func == "LEAST" || e.func == "GREATEST") {
    // NULL-skipping extrema (aggregate-MIN/MAX semantics, not the
    // NULL-poisoning variant some engines use): the partition-union rewrite
    // combines per-partition MIN/MAX shards with these, and an empty
    // partition's NULL must not erase the other shards' extremum. All-NULL
    // arguments yield NULL, exactly like MIN/MAX over an empty set.
    const bool want_min = e.func == "LEAST";
    Value best = Value::null();
    for (const auto& a : e.args) {
      const Value v = eval_expr(*a, ctx);
      if (v.is_null()) continue;
      if (best.is_null()) {
        best = v;
        continue;
      }
      const auto cmp = Value::compare_sql(v, best);
      if (cmp && (want_min ? *cmp < 0 : *cmp > 0)) best = v;
    }
    return best;
  }

  const Value v = arg(0);
  if (v.is_null()) return Value::null();
  if (e.func == "ABS") {
    return v.type() == ValueType::kInt ? Value::integer(std::llabs(v.as_int()))
                                       : Value::real(std::fabs(v.as_double()));
  }
  if (e.func == "SQRT") {
    const double x = v.as_double();
    if (x < 0) throw EvalError("SQRT of negative value");
    return Value::real(std::sqrt(x));
  }
  if (e.func == "FLOOR") return Value::real(std::floor(v.as_double()));
  if (e.func == "CEIL") return Value::real(std::ceil(v.as_double()));
  if (e.func == "ROUND") {
    const double digits = e.args.size() > 1 ? eval_expr(*e.args[1], ctx).as_double() : 0;
    const double scale = std::pow(10.0, digits);
    return Value::real(std::round(v.as_double() * scale) / scale);
  }
  if (e.func == "LENGTH") {
    return Value::integer(static_cast<std::int64_t>(v.as_string().size()));
  }
  if (e.func == "UPPER") return Value::text(support::to_upper(v.as_string()));
  if (e.func == "LOWER") return Value::text(support::to_lower(v.as_string()));
  throw EvalError(support::cat("unknown function ", e.func));
}

Value eval_expr(const Expr& e, const EvalCtx& ctx) {
  if (ctx.pinned != nullptr) {
    const auto it = ctx.pinned->find(&e);
    if (it != ctx.pinned->end()) return it->second;
  }
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kParam:
      return ctx.params[e.param_index];
    case Expr::Kind::kColumnRef:
      if (ctx.row == nullptr || e.resolved_slot >= ctx.row->size()) {
        throw EvalError(support::cat("column '", e.column,
                                     "' not available in this context"));
      }
      return (*ctx.row)[e.resolved_slot];
    case Expr::Kind::kAliasRef:
      if (ctx.output_row == nullptr || e.alias_index >= ctx.output_row->size()) {
        throw EvalError("alias reference outside ORDER BY");
      }
      return (*ctx.output_row)[e.alias_index];
    case Expr::Kind::kSubquery: {
      if (ctx.subqueries == nullptr) throw EvalError("unexpected subquery");
      const auto it = ctx.subqueries->find(&e);
      if (it == ctx.subqueries->end()) throw EvalError("subquery not materialized");
      return it->second;
    }
    case Expr::Kind::kUnary: {
      const Value v = eval_expr(*e.lhs, ctx);
      if (v.is_null()) return Value::null();
      if (e.un_op == UnOp::kNot) return Value::boolean(!v.as_bool());
      if (v.type() == ValueType::kInt) return Value::integer(-v.as_int());
      return Value::real(-v.as_double());
    }
    case Expr::Kind::kIsNull: {
      const bool null = eval_expr(*e.lhs, ctx).is_null();
      return Value::boolean(e.negated ? !null : null);
    }
    case Expr::Kind::kLike: {
      const Value text = eval_expr(*e.lhs, ctx);
      const Value pattern = eval_expr(*e.rhs, ctx);
      if (text.is_null() || pattern.is_null()) return Value::null();
      const bool m = like_match(text.as_string(), pattern.as_string());
      return Value::boolean(e.negated ? !m : m);
    }
    case Expr::Kind::kInList: {
      const Value needle = eval_expr(*e.lhs, ctx);
      if (needle.is_null()) return Value::null();
      bool saw_null = false;
      for (const auto& arg : e.args) {
        const Value v = eval_expr(*arg, ctx);
        if (v.is_null()) {
          saw_null = true;
          continue;
        }
        const auto cmp = Value::compare_sql(needle, v);
        if (cmp && *cmp == 0) return Value::boolean(!e.negated);
      }
      if (saw_null) return Value::null();
      return Value::boolean(e.negated);
    }
    case Expr::Kind::kFuncCall: {
      if (Binder::is_aggregate_name(e.func)) {
        if (ctx.aggregates == nullptr) {
          throw EvalError(support::cat("aggregate ", e.func,
                                       " outside aggregation context"));
        }
        const auto it = ctx.aggregates->find(&e);
        if (it == ctx.aggregates->end()) {
          throw EvalError("aggregate not computed for this expression");
        }
        return it->second;
      }
      return eval_scalar_function(e, ctx);
    }
    case Expr::Kind::kBinary: {
      switch (e.bin_op) {
        case BinOp::kAnd: {
          // Three-valued logic: FALSE dominates NULL.
          const Value a = eval_expr(*e.lhs, ctx);
          if (!a.is_null() && !a.as_bool()) return Value::boolean(false);
          const Value b = eval_expr(*e.rhs, ctx);
          if (!b.is_null() && !b.as_bool()) return Value::boolean(false);
          if (a.is_null() || b.is_null()) return Value::null();
          return Value::boolean(true);
        }
        case BinOp::kOr: {
          const Value a = eval_expr(*e.lhs, ctx);
          if (!a.is_null() && a.as_bool()) return Value::boolean(true);
          const Value b = eval_expr(*e.rhs, ctx);
          if (!b.is_null() && b.as_bool()) return Value::boolean(true);
          if (a.is_null() || b.is_null()) return Value::null();
          return Value::boolean(false);
        }
        case BinOp::kAdd:
        case BinOp::kSub:
        case BinOp::kMul:
        case BinOp::kDiv:
        case BinOp::kMod: {
          const char op = "+-*/%"[static_cast<int>(e.bin_op) -
                                  static_cast<int>(BinOp::kAdd)];
          return numeric_binop(op, eval_expr(*e.lhs, ctx), eval_expr(*e.rhs, ctx));
        }
        default: {
          const auto cmp =
              Value::compare_sql(eval_expr(*e.lhs, ctx), eval_expr(*e.rhs, ctx));
          if (!cmp) return Value::null();
          switch (e.bin_op) {
            case BinOp::kEq: return Value::boolean(*cmp == 0);
            case BinOp::kNe: return Value::boolean(*cmp != 0);
            case BinOp::kLt: return Value::boolean(*cmp < 0);
            case BinOp::kLe: return Value::boolean(*cmp <= 0);
            case BinOp::kGt: return Value::boolean(*cmp > 0);
            case BinOp::kGe: return Value::boolean(*cmp >= 0);
            default: throw EvalError("bad comparison operator");
          }
        }
      }
    }
  }
  throw EvalError("unhandled expression kind");
}

/// WHERE/ON/HAVING truthiness: NULL counts as false.
bool eval_predicate(const Expr& e, const EvalCtx& ctx) {
  const Value v = eval_expr(e, ctx);
  return !v.is_null() && v.as_bool();
}

// ---------------------------------------------------------------------------
// Aggregation machinery

struct AggState {
  std::size_t count = 0;           // COUNT
  support::RunningStats stats;     // SUM/AVG/STDDEV/VARIANCE
  Value min_value;                 // MIN/MAX under SQL comparison
  Value max_value;
  bool has_minmax = false;
  std::set<Value, bool (*)(const Value&, const Value&)> distinct{
      +[](const Value& a, const Value& b) {
        return Value::compare_total(a, b) < 0;
      }};
};

void agg_accumulate(const Expr& agg, AggState& state, const EvalCtx& ctx) {
  if (agg.star_arg) {
    ++state.count;
    return;
  }
  const Value v = eval_expr(*agg.args[0], ctx);
  if (v.is_null()) return;
  if (agg.distinct_arg) {
    if (!state.distinct.insert(v).second) return;
  }
  ++state.count;
  if (agg.func == "MIN" || agg.func == "MAX") {
    if (!state.has_minmax) {
      state.min_value = state.max_value = v;
      state.has_minmax = true;
    } else {
      const auto cmin = Value::compare_sql(v, state.min_value);
      if (cmin && *cmin < 0) state.min_value = v;
      const auto cmax = Value::compare_sql(v, state.max_value);
      if (cmax && *cmax > 0) state.max_value = v;
    }
    return;
  }
  if (agg.func != "COUNT") state.stats.push(v.as_double());
}

Value agg_finalize(const Expr& agg, const AggState& state) {
  if (agg.func == "COUNT") {
    return Value::integer(static_cast<std::int64_t>(state.count));
  }
  if (state.count == 0) return Value::null();
  if (agg.func == "SUM") return Value::real(state.stats.sum());
  if (agg.func == "AVG") return Value::real(state.stats.mean());
  if (agg.func == "MIN") return state.min_value;
  if (agg.func == "MAX") return state.max_value;
  if (agg.func == "STDDEV") return Value::real(state.stats.stddev_sample());
  if (agg.func == "VARIANCE") return Value::real(state.stats.variance_sample());
  throw EvalError(support::cat("unknown aggregate ", agg.func));
}

void collect_aggregates(const Expr& e, std::vector<const Expr*>& out) {
  if (e.kind == Expr::Kind::kFuncCall && Binder::is_aggregate_name(e.func)) {
    out.push_back(&e);
    return;  // arguments evaluate per input row, not per group
  }
  if (e.lhs) collect_aggregates(*e.lhs, out);
  if (e.rhs) collect_aggregates(*e.rhs, out);
  for (const auto& arg : e.args) collect_aggregates(*arg, out);
}

// ---------------------------------------------------------------------------
// Vectorized columnar scan kernels
//
// Batch-at-a-time execution over STORAGE COLUMNAR partitions: WHERE
// conjuncts AND themselves into a per-partition selection bitmap over the
// typed column lanes, then each aggregate runs a tight per-column kernel
// over the selected lanes — no Row is ever materialized. Byte-identity with
// the row path is load-bearing: every kernel visits lanes in heap order
// (partition-major, local offset within), pushes the exact doubles
// agg_accumulate would have pushed into the same RunningStats, and
// replicates Value::compare_sql's semantics per (column type, constant
// type) pair — including NaN comparing equal to everything and first-
// attained MIN/MAX ties. Unsupported type pairs fall back to the row path,
// which raises the interpreter's usual diagnostics.

constexpr std::size_t kVectorBatch = 1024;

/// Whether the comparison kernels implement compare_sql for every cell of a
/// `col`-typed column against this constant. NULL constants are supported
/// (three-valued logic: the conjunct is never true); anything else outside
/// compare_sql's defined pairs falls back to the row path.
bool conjunct_types_supported(ValueType col, const Value& constant) {
  if (constant.is_null()) return true;
  switch (col) {
    case ValueType::kInt:
    case ValueType::kDouble:
      return constant.type() == ValueType::kInt ||
             constant.type() == ValueType::kDouble;
    case ValueType::kBool:
    case ValueType::kDateTime:
    case ValueType::kString:
      return constant.type() == col;
    default:
      return false;
  }
}

bool comparison_keeps(BinOp op, int c) noexcept {
  switch (op) {
    case BinOp::kEq: return c == 0;
    case BinOp::kNe: return c != 0;
    case BinOp::kLt: return c < 0;
    case BinOp::kLe: return c <= 0;
    case BinOp::kGt: return c > 0;
    case BinOp::kGe: return c >= 0;
    default: return false;
  }
}

/// ANDs one conjunct into `sel` over lanes [begin, end). `constant` is the
/// conjunct's already-evaluated right-hand side (ignored for null tests);
/// the (column type, constant type) pair was pre-validated with
/// conjunct_types_supported.
void apply_conjunct_batch(const sql::FusedScanPlan::Conjunct& conjunct,
                          const Value& constant, ValueType col_type,
                          const Table::ColumnSlice& slice, std::size_t begin,
                          std::size_t end, std::uint8_t* sel) {
  if (conjunct.is_null_test) {
    if (conjunct.negated) {  // IS NOT NULL
      for (std::size_t i = begin; i < end; ++i) sel[i] &= slice.valid[i];
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        sel[i] &= static_cast<std::uint8_t>(slice.valid[i] ^ 1U);
      }
    }
    return;
  }
  if (constant.is_null()) {
    // compare_sql against NULL is indeterminate; WHERE treats it as false.
    std::fill(sel + begin, sel + end, std::uint8_t{0});
    return;
  }
  const BinOp op = conjunct.op;
  const auto compare_lanes = [&](auto&& c_of) {
    for (std::size_t i = begin; i < end; ++i) {
      if (sel[i] == 0) continue;
      if (slice.valid[i] == 0) {
        sel[i] = 0;  // NULL cell: the comparison is never true
        continue;
      }
      if (!comparison_keeps(op, c_of(i))) sel[i] = 0;
    }
  };
  switch (col_type) {
    case ValueType::kInt: {
      // Numeric compare_sql goes through as_double even int-vs-int; the
      // double cast here replicates that (NaN can't appear on this side).
      const double rhs = constant.as_double();
      compare_lanes([&](std::size_t i) {
        const double x = static_cast<double>(slice.ints[i]);
        return x < rhs ? -1 : (x > rhs ? 1 : 0);
      });
      break;
    }
    case ValueType::kDouble: {
      const double rhs = constant.as_double();
      compare_lanes([&](std::size_t i) {
        const double x = slice.reals[i];
        return x < rhs ? -1 : (x > rhs ? 1 : 0);
      });
      break;
    }
    case ValueType::kBool: {
      const std::int64_t rhs = constant.as_bool() ? 1 : 0;
      compare_lanes([&](std::size_t i) {
        return static_cast<int>(slice.ints[i] - rhs);
      });
      break;
    }
    case ValueType::kDateTime: {
      const std::int64_t rhs = constant.as_datetime();
      compare_lanes([&](std::size_t i) {
        const std::int64_t x = slice.ints[i];
        return x < rhs ? -1 : (x > rhs ? 1 : 0);
      });
      break;
    }
    case ValueType::kString: {
      const std::string& rhs = constant.as_string();
      compare_lanes([&](std::size_t i) {
        const int c = slice.strs[i].compare(rhs);
        return c < 0 ? -1 : (c > 0 ? 1 : 0);
      });
      break;
    }
    default:
      break;  // pre-validated: unreachable
  }
}

/// Which kernel loop serves an aggregate call.
enum class AggKernel : std::uint8_t {
  kCountStar,     // COUNT(*)
  kCountColumn,   // COUNT(col)
  kNumericStats,  // SUM/AVG/STDDEV/VARIANCE: count + RunningStats pushes
  kMinMax,        // MIN/MAX: typed first-attained extremes
};

/// Typed running extremes for a MIN/MAX kernel, mirroring agg_accumulate's
/// first-attained rule (strict compare; ties and NaN keep the incumbent).
/// Only the member matching the column's lane type is meaningful; both the
/// low and the high side track, exactly as agg_accumulate updates both
/// min_value and max_value from one state.
struct MinMaxAcc {
  bool has = false;
  std::int64_t lo_i = 0;
  std::int64_t hi_i = 0;
  double lo_d = 0;
  double hi_d = 0;
  std::string lo_s;
  std::string hi_s;
};

void accumulate_batch(AggKernel kernel, ValueType col_type,
                      const Table::ColumnSlice& slice, std::size_t begin,
                      std::size_t end, const std::uint8_t* sel,
                      AggState& state, MinMaxAcc& minmax) {
  switch (kernel) {
    case AggKernel::kCountStar:
      for (std::size_t i = begin; i < end; ++i) state.count += sel[i];
      return;
    case AggKernel::kCountColumn:
      for (std::size_t i = begin; i < end; ++i) {
        state.count += sel[i] & slice.valid[i];
      }
      return;
    case AggKernel::kNumericStats:
      // Lane order is heap order, so the Welford accumulator sees the exact
      // push sequence of the row path — bit-for-bit identical SUM/AVG.
      if (col_type == ValueType::kInt) {
        for (std::size_t i = begin; i < end; ++i) {
          if (sel[i] && slice.valid[i]) {
            ++state.count;
            state.stats.push(static_cast<double>(slice.ints[i]));
          }
        }
      } else {
        for (std::size_t i = begin; i < end; ++i) {
          if (sel[i] && slice.valid[i]) {
            ++state.count;
            state.stats.push(slice.reals[i]);
          }
        }
      }
      return;
    case AggKernel::kMinMax:
      switch (col_type) {
        case ValueType::kInt:
          // compare_sql compares ints via double; replicate the cast so
          // > 2^53 collisions keep the first-attained value.
          for (std::size_t i = begin; i < end; ++i) {
            if (!(sel[i] && slice.valid[i])) continue;
            ++state.count;
            const std::int64_t x = slice.ints[i];
            if (!minmax.has) {
              minmax.has = true;
              minmax.lo_i = minmax.hi_i = x;
              continue;
            }
            const auto xd = static_cast<double>(x);
            if (xd < static_cast<double>(minmax.lo_i)) minmax.lo_i = x;
            if (xd > static_cast<double>(minmax.hi_i)) minmax.hi_i = x;
          }
          return;
        case ValueType::kBool:
        case ValueType::kDateTime:
          for (std::size_t i = begin; i < end; ++i) {
            if (!(sel[i] && slice.valid[i])) continue;
            ++state.count;
            const std::int64_t x = slice.ints[i];
            if (!minmax.has) {
              minmax.has = true;
              minmax.lo_i = minmax.hi_i = x;
              continue;
            }
            if (x < minmax.lo_i) minmax.lo_i = x;
            if (x > minmax.hi_i) minmax.hi_i = x;
          }
          return;
        case ValueType::kDouble:
          for (std::size_t i = begin; i < end; ++i) {
            if (!(sel[i] && slice.valid[i])) continue;
            ++state.count;
            const double x = slice.reals[i];
            if (!minmax.has) {
              minmax.has = true;
              minmax.lo_d = minmax.hi_d = x;
              continue;
            }
            if (x < minmax.lo_d) minmax.lo_d = x;
            if (x > minmax.hi_d) minmax.hi_d = x;
          }
          return;
        case ValueType::kString:
          for (std::size_t i = begin; i < end; ++i) {
            if (!(sel[i] && slice.valid[i])) continue;
            ++state.count;
            const std::string& x = slice.strs[i];
            if (!minmax.has) {
              minmax.has = true;
              minmax.lo_s = minmax.hi_s = x;
              continue;
            }
            if (x.compare(minmax.lo_s) < 0) minmax.lo_s = x;
            if (x.compare(minmax.hi_s) > 0) minmax.hi_s = x;
          }
          return;
        default:
          return;
      }
  }
}

/// Rebuilds the Value agg_finalize expects from a typed extreme.
Value minmax_value(ValueType col_type, const MinMaxAcc& acc, bool max_side) {
  switch (col_type) {
    case ValueType::kInt:
      return Value::integer(max_side ? acc.hi_i : acc.lo_i);
    case ValueType::kBool:
      return Value::boolean((max_side ? acc.hi_i : acc.lo_i) != 0);
    case ValueType::kDateTime:
      return Value::datetime(max_side ? acc.hi_i : acc.lo_i);
    case ValueType::kDouble:
      return Value::real(max_side ? acc.hi_d : acc.lo_d);
    default:
      return Value::text(max_side ? acc.hi_s : acc.lo_s);
  }
}

/// Kernel selection for one supported aggregate call.
AggKernel agg_kernel_of(const Expr& agg) {
  if (agg.star_arg) return AggKernel::kCountStar;
  if (agg.func == "COUNT") return AggKernel::kCountColumn;
  if (agg.func == "MIN" || agg.func == "MAX") return AggKernel::kMinMax;
  return AggKernel::kNumericStats;
}

/// True when a bare (non-aggregate-argument) column reference appears in
/// the expression — global aggregation has no representative row for it on
/// the fused path. Does not descend into scalar subqueries (their columns
/// belong to their own scope and the executor consumes the materialized
/// scalar).
bool has_bare_column_ref(const Expr& e) {
  if (e.kind == Expr::Kind::kColumnRef) return true;
  if (e.kind == Expr::Kind::kFuncCall && Binder::is_aggregate_name(e.func)) {
    return false;  // argument columns feed the kernels, not the output row
  }
  if (e.lhs && has_bare_column_ref(*e.lhs)) return true;
  if (e.rhs && has_bare_column_ref(*e.rhs)) return true;
  for (const auto& arg : e.args) {
    if (has_bare_column_ref(*arg)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Grouped vectorized kernels
//
// The GROUP BY twin of the fused path: selection bitmaps are shared, but
// instead of one global accumulator each selected lane is first mapped to a
// group id through a hash over the GROUP BY key lanes, and the aggregate
// kernels index per-group state with that id. Group equality must mirror
// Value::compare_total for same-column pairs — the numeric class compares
// int lanes through double, every other class is declared-type-exact — so
// groups split exactly where the row path's std::map keys would.

/// Hash of one group-key lane; lanes that group_lane_equals treats as equal
/// hash equal (ints through double; ±0.0 normalized for the double lanes).
std::size_t group_lane_hash(ValueType type, const Table::ColumnSlice& slice,
                            std::size_t lane) {
  constexpr std::size_t kNullHash = 0x517cc1b727220a95ULL;
  if (slice.valid[lane] == 0) return kNullHash;
  switch (type) {
    case ValueType::kBool:
      return slice.ints[lane] != 0 ? 2 : 1;
    case ValueType::kInt:
      return std::hash<double>{}(static_cast<double>(slice.ints[lane]));
    case ValueType::kDateTime:
      return std::hash<std::int64_t>{}(slice.ints[lane]);
    case ValueType::kDouble: {
      const double d = slice.reals[lane];
      return std::hash<double>{}(d == 0.0 ? 0.0 : d);
    }
    case ValueType::kString:
      return std::hash<std::string>{}(slice.strs[lane]);
    default:
      return 0;
  }
}

/// One group-key lane against a stored key Value of the same column:
/// replicates Value::compare_total == 0 (NULL equals NULL and nothing else).
bool group_lane_equals(ValueType type, const Table::ColumnSlice& slice,
                       std::size_t lane, const Value& key) {
  if (slice.valid[lane] == 0) return key.is_null();
  if (key.is_null()) return false;
  switch (type) {
    case ValueType::kBool:
      return (slice.ints[lane] != 0) == key.as_bool();
    case ValueType::kInt:
      // compare_total's numeric class compares through as_double.
      return static_cast<double>(slice.ints[lane]) == key.as_double();
    case ValueType::kDateTime:
      return slice.ints[lane] == key.as_datetime();
    case ValueType::kDouble:
      return slice.reals[lane] == key.as_double();
    case ValueType::kString:
      return slice.strs[lane] == key.as_string();
    default:
      return false;
  }
}

/// Rebuilds the Value a group-key lane denotes — the same mapping the row
/// path's eval of the GROUP BY column ref produces from the stored cell.
Value group_lane_value(ValueType type, const Table::ColumnSlice& slice,
                       std::size_t lane) {
  if (slice.valid[lane] == 0) return Value::null();
  switch (type) {
    case ValueType::kBool:
      return Value::boolean(slice.ints[lane] != 0);
    case ValueType::kInt:
      return Value::integer(slice.ints[lane]);
    case ValueType::kDateTime:
      return Value::datetime(slice.ints[lane]);
    case ValueType::kDouble:
      return Value::real(slice.reals[lane]);
    default:
      return Value::text(slice.strs[lane]);
  }
}

/// Grouped twin of accumulate_batch: identical per-lane arithmetic, but each
/// selected lane lands in its group's state (`gid[i]`) instead of one global
/// accumulator. Lanes are visited in heap order, so every group's push
/// sequence is exactly the subsequence the row path feeds it.
void accumulate_grouped_batch(AggKernel kernel, ValueType col_type,
                              const Table::ColumnSlice& slice,
                              std::size_t begin, std::size_t end,
                              const std::uint8_t* sel,
                              const std::uint32_t* gid,
                              std::vector<AggState>& states,
                              std::vector<MinMaxAcc>& minmax) {
  switch (kernel) {
    case AggKernel::kCountStar:
      for (std::size_t i = begin; i < end; ++i) {
        if (sel[i]) ++states[gid[i]].count;
      }
      return;
    case AggKernel::kCountColumn:
      for (std::size_t i = begin; i < end; ++i) {
        if (sel[i] && slice.valid[i]) ++states[gid[i]].count;
      }
      return;
    case AggKernel::kNumericStats:
      if (col_type == ValueType::kInt) {
        for (std::size_t i = begin; i < end; ++i) {
          if (sel[i] && slice.valid[i]) {
            AggState& state = states[gid[i]];
            ++state.count;
            state.stats.push(static_cast<double>(slice.ints[i]));
          }
        }
      } else {
        for (std::size_t i = begin; i < end; ++i) {
          if (sel[i] && slice.valid[i]) {
            AggState& state = states[gid[i]];
            ++state.count;
            state.stats.push(slice.reals[i]);
          }
        }
      }
      return;
    case AggKernel::kMinMax:
      switch (col_type) {
        case ValueType::kInt:
          for (std::size_t i = begin; i < end; ++i) {
            if (!(sel[i] && slice.valid[i])) continue;
            ++states[gid[i]].count;
            MinMaxAcc& acc = minmax[gid[i]];
            const std::int64_t x = slice.ints[i];
            if (!acc.has) {
              acc.has = true;
              acc.lo_i = acc.hi_i = x;
              continue;
            }
            const auto xd = static_cast<double>(x);
            if (xd < static_cast<double>(acc.lo_i)) acc.lo_i = x;
            if (xd > static_cast<double>(acc.hi_i)) acc.hi_i = x;
          }
          return;
        case ValueType::kBool:
        case ValueType::kDateTime:
          for (std::size_t i = begin; i < end; ++i) {
            if (!(sel[i] && slice.valid[i])) continue;
            ++states[gid[i]].count;
            MinMaxAcc& acc = minmax[gid[i]];
            const std::int64_t x = slice.ints[i];
            if (!acc.has) {
              acc.has = true;
              acc.lo_i = acc.hi_i = x;
              continue;
            }
            if (x < acc.lo_i) acc.lo_i = x;
            if (x > acc.hi_i) acc.hi_i = x;
          }
          return;
        case ValueType::kDouble:
          for (std::size_t i = begin; i < end; ++i) {
            if (!(sel[i] && slice.valid[i])) continue;
            ++states[gid[i]].count;
            MinMaxAcc& acc = minmax[gid[i]];
            const double x = slice.reals[i];
            if (!acc.has) {
              acc.has = true;
              acc.lo_d = acc.hi_d = x;
              continue;
            }
            if (x < acc.lo_d) acc.lo_d = x;
            if (x > acc.hi_d) acc.hi_d = x;
          }
          return;
        case ValueType::kString:
          for (std::size_t i = begin; i < end; ++i) {
            if (!(sel[i] && slice.valid[i])) continue;
            ++states[gid[i]].count;
            MinMaxAcc& acc = minmax[gid[i]];
            const std::string& x = slice.strs[i];
            if (!acc.has) {
              acc.has = true;
              acc.lo_s = acc.hi_s = x;
              continue;
            }
            if (x.compare(acc.lo_s) < 0) acc.lo_s = x;
            if (x.compare(acc.hi_s) > 0) acc.hi_s = x;
          }
          return;
        default:
          return;
      }
  }
}

// ---------------------------------------------------------------------------
// Columnar hash equi-join kernels

/// Key category of a columnar equi-join. Lane equality must mirror
/// ValueEqTotal: the numeric class joins INTEGER and DOUBLE lanes through
/// double; every other class requires the same declared type on both sides.
/// Cross-class pairs return nullopt — ValueEqTotal never matches them, so
/// the (cheap, empty) row path keeps that behavior.
enum class JoinKeyKind : std::uint8_t { kNumeric, kBool, kDateTime, kString };

std::optional<JoinKeyKind> join_key_kind(ValueType a, ValueType b) {
  const auto numeric = [](ValueType t) {
    return t == ValueType::kInt || t == ValueType::kDouble;
  };
  if (numeric(a) && numeric(b)) return JoinKeyKind::kNumeric;
  if (a != b) return std::nullopt;
  switch (a) {
    case ValueType::kBool:
      return JoinKeyKind::kBool;
    case ValueType::kDateTime:
      return JoinKeyKind::kDateTime;
    case ValueType::kString:
      return JoinKeyKind::kString;
    default:
      return std::nullopt;
  }
}

/// Build-and-probe over masked key slices: inserts every usable (live,
/// non-NULL) build lane's row id keyed by `key_of(slice, lane)`, then probes
/// with the other side's usable lanes and collects surviving
/// (outer id, inner id) pairs. Per-key id lists keep insertion (= build scan)
/// order, so when the build side is the inner table the pair stream is
/// already the row path's emission order. NULL lanes never participate: SQL
/// equality cannot match them, and the ON re-evaluation during row assembly
/// would discard such a pair anyway.
template <typename Key, typename KeyOf>
std::vector<std::pair<std::size_t, std::size_t>> columnar_join_pairs(
    const std::vector<Table::KeySlice>& build,
    const std::vector<Table::KeySlice>& probe, bool build_is_outer,
    std::uint64_t& lanes_probed, KeyOf&& key_of) {
  std::unordered_map<Key, std::vector<std::size_t>> table;
  for (const Table::KeySlice& s : build) {
    for (std::size_t i = 0; i < s.column.size; ++i) {
      if (s.usable(i)) {
        table[key_of(s.column, i)].push_back(make_row_id(s.partition, i));
      }
    }
  }
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (const Table::KeySlice& s : probe) {
    for (std::size_t i = 0; i < s.column.size; ++i) {
      if (!s.usable(i)) continue;
      ++lanes_probed;
      const auto it = table.find(key_of(s.column, i));
      if (it == table.end()) continue;
      const std::size_t probe_id = make_row_id(s.partition, i);
      for (const std::size_t build_id : it->second) {
        pairs.emplace_back(build_is_outer ? build_id : probe_id,
                           build_is_outer ? probe_id : build_id);
      }
    }
  }
  return pairs;
}

// ---------------------------------------------------------------------------
// Structural keys for the uncorrelated-subquery memo. Unlike
// Expr::to_string, this rendering is unambiguous: parameters carry their
// index, literals their type tag, and nested subqueries render in full —
// equal keys mean equal results within one statement execution (subqueries
// are uncorrelated, so nothing row-dependent can appear in them).

void subquery_key(const sql::SelectStmt& s, std::string& out);

void subquery_key(const Expr& e, std::string& out) {
  out += static_cast<char>('A' + static_cast<int>(e.kind));
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      out += static_cast<char>('0' + static_cast<int>(e.literal.type()));
      out += e.literal.to_display();
      break;
    case Expr::Kind::kColumnRef:
      out += e.table;
      out += '.';
      out += e.column;
      break;
    case Expr::Kind::kParam:
      out += std::to_string(e.param_index);
      break;
    case Expr::Kind::kUnary:
      out += static_cast<char>('0' + static_cast<int>(e.un_op));
      break;
    case Expr::Kind::kBinary:
      out += static_cast<char>('0' + static_cast<int>(e.bin_op));
      break;
    case Expr::Kind::kFuncCall:
      out += e.func;
      if (e.star_arg) out += '*';
      if (e.distinct_arg) out += '!';
      break;
    case Expr::Kind::kIsNull:
    case Expr::Kind::kInList:
    case Expr::Kind::kLike:
      if (e.negated) out += '!';
      break;
    case Expr::Kind::kSubquery:
      subquery_key(*e.subquery, out);
      break;
    case Expr::Kind::kAliasRef:
      out += std::to_string(e.alias_index);
      break;
  }
  out += '(';
  if (e.lhs) subquery_key(*e.lhs, out);
  out += ',';
  if (e.rhs) subquery_key(*e.rhs, out);
  for (const auto& arg : e.args) {
    out += ',';
    subquery_key(*arg, out);
  }
  out += ')';
}

void subquery_key(const sql::SelectStmt& s, std::string& out) {
  out += s.distinct ? "S!" : "S";
  for (const auto& item : s.items) {
    if (item.star) {
      out += '*';
      out += item.star_table;
    } else {
      subquery_key(*item.expr, out);
    }
    out += ',';
  }
  const auto table_ref_key = [&out](const sql::TableRef& ref) {
    out += ref.table;
    // `t PARTITION (0)` and `t PARTITION (1)` scan different rows; the
    // selector must split the memo key or the second one would be served
    // the first one's result.
    if (ref.partition) out += support::cat("#p", *ref.partition);
    out += ' ';
    out += ref.alias;
  };
  if (s.from) {
    out += "F";
    table_ref_key(*s.from);
  }
  for (const auto& join : s.joins) {
    out += "J";
    table_ref_key(join.table);
    if (join.on) subquery_key(*join.on, out);
  }
  if (s.where) {
    out += "W";
    subquery_key(*s.where, out);
  }
  for (const auto& g : s.group_by) {
    out += "G";
    subquery_key(*g, out);
  }
  if (s.having) {
    out += "H";
    subquery_key(*s.having, out);
  }
  for (const auto& key : s.order_by) {
    out += key.descending ? "Od" : "Oa";
    subquery_key(*key.expr, out);
  }
  if (s.limit) out += support::cat("L", *s.limit);
  if (s.offset) out += support::cat("K", *s.offset);
}

// ---------------------------------------------------------------------------
// SELECT execution

class SelectExec {
 public:
  /// `enclosing` is the CTE scope of the statement this execution nests in
  /// (null at top level); `env` is the shared per-top-level-statement state
  /// (null at top level — one is created locally). `injected` optionally
  /// names externally-materialized results: WITH entries matching an
  /// injected name are not executed, their names resolve to the injected
  /// rows (the distributed coordinator's gather path).
  SelectExec(Database& db, sql::SelectStmt& stmt, std::span<const Value> params,
             const CteScope* enclosing = nullptr, ExecEnv* env = nullptr,
             const CteScope* injected = nullptr)
      : db_(db), stmt_(stmt), params_(params), scope_{enclosing, {}},
        env_(env), injected_(injected) {}

  QueryResult run() {
    ExecEnv local_env;
    if (env_ == nullptr) env_ = &local_env;

    if (!stmt_.ctes.empty()) materialize_ctes();

    Binder binder(db_, params_);
    sources_ = binder.bind_sources(stmt_, &scope_);
    expand_stars();
    bind_all(binder);
    materialize_subqueries();

    QueryResult result;
    result.columns = output_names();

    std::vector<std::pair<Row, Row>> out;  // (output row, order keys)
    std::optional<std::vector<std::pair<Row, Row>>> fused;
    const bool aggregation = needs_aggregation();
    if (aggregation) fused = try_vectorized_aggregation();
    if (fused) {
      // Fused single-pass columnar evaluator: scan, WHERE, and aggregation
      // already happened batch-at-a-time over the column vectors.
      out = std::move(*fused);
    } else {
      std::vector<Row> rows = scan_and_join();
      if (stmt_.where && !where_applied_) {
        std::vector<Row> kept;
        kept.reserve(rows.size());
        for (Row& row : rows) {
          EvalCtx ctx{&row, params_, nullptr, &subquery_values_, nullptr};
          if (eval_predicate(*stmt_.where, ctx)) kept.push_back(std::move(row));
        }
        rows = std::move(kept);
      }

      if (aggregation) {
        out = run_aggregation(rows);
      } else {
        out.reserve(rows.size());
        for (const Row& row : rows) {
          EvalCtx ctx{&row, params_, nullptr, &subquery_values_, nullptr};
          Row output;
          output.reserve(stmt_.items.size());
          for (const auto& item : stmt_.items) {
            output.push_back(eval_expr(*item.expr, ctx));
          }
          Row keys = eval_order_keys(ctx, output);
          out.emplace_back(std::move(output), std::move(keys));
        }
      }
    }

    if (stmt_.distinct) {
      std::set<Row, bool (*)(const Row&, const Row&)> seen(+[](const Row& a,
                                                               const Row& b) {
        for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
          const int c = Value::compare_total(a[i], b[i]);
          if (c != 0) return c < 0;
        }
        return a.size() < b.size();
      });
      std::vector<std::pair<Row, Row>> deduped;
      for (auto& pair : out) {
        if (seen.insert(pair.first).second) deduped.push_back(std::move(pair));
      }
      out = std::move(deduped);
    }

    if (!stmt_.order_by.empty()) {
      std::stable_sort(out.begin(), out.end(), [&](const auto& a, const auto& b) {
        for (std::size_t i = 0; i < stmt_.order_by.size(); ++i) {
          int c = Value::compare_total(a.second[i], b.second[i]);
          if (stmt_.order_by[i].descending) c = -c;
          if (c != 0) return c < 0;
        }
        return false;
      });
    }

    const std::size_t offset = stmt_.offset.value_or(0);
    const std::size_t limit = stmt_.limit.value_or(out.size());
    for (std::size_t i = offset; i < out.size() && i - offset < limit; ++i) {
      result.rows.push_back(std::move(out[i].first));
    }
    return result;
  }

  /// Analysis-only companion to run() for Database::explain_fused: binds
  /// the statement exactly like run() but materializes nothing (CTE bodies
  /// are explained separately by the caller; a FROM naming one fails to
  /// bind here, which the caller reports as row path), then reports which
  /// evaluator the fused analysis picks. Any program compiled here is
  /// discarded with the caller's throwaway parse tree and never counted
  /// (count_compiles_ off) — explain must not move the pinned counters.
  [[nodiscard]] std::string explain_verdict() {
    ExecEnv local_env;
    if (env_ == nullptr) env_ = &local_env;
    count_compiles_ = false;
    // CTE names bind against an empty derived result — enough for the
    // verdict, since derived sources always stay on the row path.
    static const QueryResult kEmptyDerived;
    for (const auto& cte : stmt_.ctes) {
      scope_.entries.emplace_back(cte.name, &kEmptyDerived);
    }
    Binder binder(db_, params_);
    sources_ = binder.bind_sources(stmt_, &scope_);
    expand_stars();
    bind_all(binder);
    if (!needs_aggregation()) return "row path (no aggregation)";
    if (sources_.size() != 1 || sources_[0].table == nullptr ||
        !sources_[0].table->columnar()) {
      return "row path (not a single columnar base table)";
    }
    const ScanSource& base = sources_[0];
    if (!stmt_.group_by.empty()) {
      return analyze_grouped(base) != nullptr
                 ? "fused grouped (vectorized)"
                 : "row path (grouped shape unsupported)";
    }
    return analyze_fused(base) != nullptr
               ? "fused global aggregate (vectorized)"
               : "row path (shape unsupported)";
  }

 private:
  /// Declaration indices of earlier CTEs the `index`-th body references
  /// (FROM, JOINs, and subqueries, recursively). The parser already rejects
  /// self and forward references, so dependencies only point backwards.
  [[nodiscard]] std::vector<std::size_t> cte_dependencies(
      std::size_t index) const {
    std::vector<std::size_t> deps;
    sql::for_each_table_ref(
        *stmt_.ctes[index].select, [&](const sql::TableRef& ref) {
          for (std::size_t j = 0; j < index; ++j) {
            if (support::iequals(ref.table, stmt_.ctes[j].name)) {
              deps.push_back(j);
              return;
            }
          }
        });
    return deps;
  }

  /// Live rows the `index`-th CTE's base scan would touch (0 when the body
  /// is FROM-less or reads a derived source) — the dispatch-threshold
  /// estimate for parallel materialization.
  [[nodiscard]] std::size_t cte_scan_estimate(std::size_t index) const {
    const sql::SelectStmt& body = *stmt_.ctes[index].select;
    if (!body.from) return 0;
    if (scope_.find(body.from->table) != nullptr) return 0;  // derived
    const Table* table = db_.find_table(body.from->table);
    if (table == nullptr) return 0;  // surfaces as a bind error later
    if (body.from->partition && *body.from->partition < table->partition_count()) {
      return table->partition_live_count(*body.from->partition);
    }
    return table->live_row_count();
  }

  /// Materializes the WITH entries exactly once per execution. Entries are
  /// scheduled in dependency waves: every CTE whose (strictly earlier)
  /// references are already materialized is ready, and a ready wave of two
  /// or more bodies runs concurrently on the scan pool when the scan config
  /// allows it — this is what lets a partition-union statement scan its
  /// `part<K>` CTEs in parallel inside ONE statement execution. Results
  /// land in declaration-indexed slots and scope entries are appended in
  /// declaration order, so the visible row streams are byte-identical to
  /// the serial left-to-right materialization.
  void materialize_ctes() {
    const std::size_t n = stmt_.ctes.size();
    cte_results_.resize(n);
    std::vector<std::vector<std::size_t>> deps(n);
    for (std::size_t i = 0; i < n; ++i) deps[i] = cte_dependencies(i);

    const Database::ScanConfig& config = db_.scan_config();
    std::size_t workers =
        config.threads == 0 ? scan_pool().size() : config.threads;

    std::vector<bool> done(n, false);
    std::size_t materialized = 0;
    if (injected_ != nullptr) {
      // Pre-materialized entries (distributed gather): mark them done so no
      // wave executes their bodies, and expose the injected rows under the
      // declared names. Declaration order is preserved ahead of every wave,
      // so lookup shadowing behaves as in the serial materialization.
      for (std::size_t i = 0; i < n; ++i) {
        const QueryResult* pre = injected_->find(stmt_.ctes[i].name);
        if (pre == nullptr) continue;
        done[i] = true;
        scope_.entries.emplace_back(stmt_.ctes[i].name, pre);
        ++materialized;
      }
    }
    while (materialized < n) {
      std::vector<std::size_t> wave;
      for (std::size_t i = 0; i < n; ++i) {
        if (done[i]) continue;
        const bool ready = std::all_of(deps[i].begin(), deps[i].end(),
                                       [&](std::size_t j) { return done[j]; });
        if (ready) wave.push_back(i);
      }
      // The dependency graph is acyclic (parser-enforced), so progress is
      // guaranteed: at least the lowest unfinished index is ready.

      std::size_t estimate = 0;
      for (const std::size_t i : wave) estimate += cte_scan_estimate(i);
      const bool parallel = wave.size() >= 2 && workers >= 2 &&
                            !env_->on_pool &&
                            estimate >= config.min_parallel_rows;
      if (parallel) {
        // Each body gets a private ExecEnv seeded with the statement's memo
        // (bodies on the pool must not share a mutable map); fresh entries
        // merge back in declaration order, so the surviving memo is
        // deterministic. on_pool keeps the bodies strictly serial inside —
        // a pool task blocking on the pool is a self-deadlock.
        std::vector<ExecEnv> envs(wave.size());
        for (ExecEnv& env : envs) {
          env.subquery_memo = env_->subquery_memo;
          env.on_pool = true;
        }
        std::atomic<std::size_t> next{0};
        const std::size_t tasks = std::min(workers, wave.size());
        std::vector<std::future<void>> futures;
        futures.reserve(tasks);
        for (std::size_t w = 0; w < tasks; ++w) {
          futures.push_back(scan_pool().submit([&] {
            while (true) {
              const std::size_t i = next.fetch_add(1);
              if (i >= wave.size()) return;
              SelectExec body(db_, *stmt_.ctes[wave[i]].select, params_,
                              &scope_, &envs[i]);
              cte_results_[wave[i]] = body.run();
              db_.count_cte_materialization();
            }
          }));
        }
        std::exception_ptr first_error;
        for (std::future<void>& future : futures) {
          try {
            future.get();
          } catch (...) {
            if (!first_error) first_error = std::current_exception();
          }
        }
        if (first_error) std::rethrow_exception(first_error);
        db_.count_cte_parallel_materializations(wave.size());
        for (ExecEnv& env : envs) {
          for (auto& [key, value] : env.subquery_memo) {
            env_->subquery_memo.try_emplace(key, value);
          }
        }
      } else {
        for (const std::size_t i : wave) {
          SelectExec body(db_, *stmt_.ctes[i].select, params_, &scope_, env_);
          cte_results_[i] = body.run();
          db_.count_cte_materialization();
        }
      }
      for (const std::size_t i : wave) {
        done[i] = true;
        scope_.entries.emplace_back(stmt_.ctes[i].name, &cte_results_[i]);
        ++materialized;
      }
    }
  }

  void expand_stars() {
    std::vector<sql::SelectItem> expanded;
    for (auto& item : stmt_.items) {
      if (!item.star) {
        expanded.push_back(std::move(item));
        continue;
      }
      bool matched = false;
      for (const ScanSource& s : sources_) {
        if (!item.star_table.empty() &&
            !support::iequals(item.star_table, s.qualifier)) {
          continue;
        }
        matched = true;
        for (std::size_t c = 0; c < s.column_count(); ++c) {
          sql::SelectItem col;
          col.expr = std::make_unique<Expr>();
          col.expr->kind = Expr::Kind::kColumnRef;
          col.expr->table = s.qualifier;
          col.expr->column = s.column_name(c);
          expanded.push_back(std::move(col));
        }
      }
      if (!matched) {
        throw EvalError(item.star_table.empty()
                            ? std::string("SELECT * without FROM")
                            : support::cat("unknown table '", item.star_table,
                                           "' in ", item.star_table, ".*"));
      }
    }
    if (expanded.empty()) throw EvalError("empty select list");
    stmt_.items = std::move(expanded);
  }

  void bind_all(Binder& binder) {
    for (auto& item : stmt_.items) {
      binder.bind_expr(*item.expr, sources_, /*allow_aggregates=*/true);
    }
    if (stmt_.where) {
      binder.bind_expr(*stmt_.where, sources_, /*allow_aggregates=*/false);
    }
    for (auto& join : stmt_.joins) {
      if (join.on) binder.bind_expr(*join.on, sources_, /*allow_aggregates=*/false);
    }
    for (auto& g : stmt_.group_by) {
      binder.bind_expr(*g, sources_, /*allow_aggregates=*/false);
    }
    if (stmt_.having) {
      binder.bind_expr(*stmt_.having, sources_, /*allow_aggregates=*/true);
    }
    for (auto& key : stmt_.order_by) {
      // ORDER BY <ordinal> and ORDER BY <alias> resolve to select items.
      if (key.expr->kind == Expr::Kind::kLiteral &&
          key.expr->literal.type() == ValueType::kInt) {
        const std::int64_t ordinal = key.expr->literal.as_int();
        if (ordinal < 1 ||
            ordinal > static_cast<std::int64_t>(stmt_.items.size())) {
          throw EvalError(support::cat("ORDER BY position ", ordinal,
                                       " out of range"));
        }
        key.expr->kind = Expr::Kind::kAliasRef;
        key.expr->alias_index = static_cast<std::size_t>(ordinal - 1);
        continue;
      }
      if (key.expr->kind == Expr::Kind::kColumnRef && key.expr->table.empty()) {
        bool is_alias = false;
        for (std::size_t i = 0; i < stmt_.items.size(); ++i) {
          if (!stmt_.items[i].alias.empty() &&
              support::iequals(stmt_.items[i].alias, key.expr->column)) {
            key.expr->kind = Expr::Kind::kAliasRef;
            key.expr->alias_index = i;
            is_alias = true;
            break;
          }
        }
        if (is_alias) continue;
      }
      binder.bind_expr(*key.expr, sources_, /*allow_aggregates=*/true);
    }
  }

  void materialize_one(const Expr& e) {
    if (e.kind == Expr::Kind::kSubquery) {
      // Memo key: structural rendering plus the number of CTE entries
      // visible right now — a name can resolve to a table before a
      // shadowing CTE materializes and to the CTE afterwards, and the
      // count tells those two moments apart.
      std::string key = support::cat(scope_.visible_count(), ':');
      subquery_key(*e.subquery, key);
      const auto hit = env_->subquery_memo.find(key);
      if (hit != env_->subquery_memo.end()) {
        db_.count_subquery_memo_hit();
        subquery_values_[&e] = hit->second;
        return;
      }
      // Execute a clone so the original statement stays reusable; the memo
      // makes this a once-per-distinct-shape cost instead of once per
      // occurrence.
      sql::ExprRemap remap;
      std::unique_ptr<sql::SelectStmt> sub = e.subquery->clone(&remap);
      SelectExec exec(db_, *sub, params_, &scope_, env_);
      QueryResult sub_result = exec.run();
      db_.count_subquery_execution();
      // Back-propagate plan verdicts the clone's execution produced onto
      // the original subquery (mutable annotation members), so the next
      // execution of the enclosing prepared statement clones a
      // pre-analyzed tree instead of re-deriving the verdict.
      if (sub->fused_rejected && !e.subquery->fused_rejected) {
        e.subquery->fused_rejected = true;
      }
      if ((sub->fused_plan && !e.subquery->fused_plan) ||
          (sub->fused_group_plan && !e.subquery->fused_group_plan)) {
        sql::ExprRemap inverse;
        inverse.reserve(remap.size());
        for (const auto& [original, copy] : remap) inverse[copy] = original;
        if (sub->fused_plan && !e.subquery->fused_plan) {
          e.subquery->fused_plan = sql::remap_onto(*sub->fused_plan, inverse);
        }
        if (sub->fused_group_plan && !e.subquery->fused_group_plan) {
          e.subquery->fused_group_plan =
              sql::remap_onto(*sub->fused_group_plan, inverse);
        }
      }
      if (sub_result.column_count() != 1) {
        throw EvalError("scalar subquery must produce one column");
      }
      if (sub_result.row_count() > 1) {
        throw EvalError("scalar subquery produced more than one row");
      }
      const Value scalar = sub_result.scalar();
      env_->subquery_memo.emplace(std::move(key), scalar);
      subquery_values_[&e] = scalar;
      return;
    }
    if (e.lhs) materialize_one(*e.lhs);
    if (e.rhs) materialize_one(*e.rhs);
    for (const auto& arg : e.args) materialize_one(*arg);
  }

  void materialize_subqueries() {
    for (const auto& item : stmt_.items) materialize_one(*item.expr);
    if (stmt_.where) materialize_one(*stmt_.where);
    for (const auto& join : stmt_.joins) {
      if (join.on) materialize_one(*join.on);
    }
    for (const auto& g : stmt_.group_by) materialize_one(*g);
    if (stmt_.having) materialize_one(*stmt_.having);
    for (const auto& key : stmt_.order_by) materialize_one(*key.expr);
  }

  /// Access path chosen for the base scan from indexable WHERE conjuncts.
  struct BaseScanPlan {
    enum class Kind { kFullScan, kEquality, kRange };
    Kind kind = Kind::kFullScan;
    const Index* index = nullptr;
    Value key;                 // kEquality
    std::optional<Value> lo;   // kRange (inclusive; strictness re-filtered)
    std::optional<Value> hi;
    /// Partition pruning: an equality conjunct on the table's partition
    /// column routes a heap scan to this single partition. Only full scans
    /// carry it — index paths route internally, shard by shard.
    std::optional<std::size_t> partition;
    /// An explicit `PARTITION (k)` selector conflicts with the partition an
    /// equality conjunct routes to: the scan provably yields nothing.
    bool empty = false;
  };

  /// Collects `column op constant` conjuncts over the given source and
  /// picks an index access path: equality probes win; otherwise range
  /// bounds on an ordered-indexed column. The full WHERE clause is applied
  /// afterwards regardless, so inclusive range bounds are always safe.
  /// Equality conjuncts on the partition column additionally record the
  /// scan's target partition for heap-scan pruning.
  [[nodiscard]] BaseScanPlan plan_base_scan(const Expr* predicate,
                                            const ScanSource& source) {
    BaseScanPlan plan;
    if (source.table == nullptr) return plan;  // derived rows: full scan
    std::map<std::size_t, BaseScanPlan> ranges;  // column -> partial bounds

    const auto constant_of = [&](const Expr& e) -> std::optional<Value> {
      if (e.kind != Expr::Kind::kLiteral && e.kind != Expr::Kind::kParam &&
          e.kind != Expr::Kind::kSubquery) {
        return std::nullopt;
      }
      EvalCtx ctx{nullptr, params_, nullptr, &subquery_values_, nullptr};
      return eval_expr(e, ctx);
    };
    const auto column_of = [&](const Expr& e) -> std::optional<std::size_t> {
      if (e.kind != Expr::Kind::kColumnRef) return std::nullopt;
      if (e.resolved_slot < source.base_slot ||
          e.resolved_slot >= source.base_slot + source.column_count()) {
        return std::nullopt;
      }
      return e.resolved_slot - source.base_slot;
    };

    const auto visit = [&](auto&& self, const Expr* e) -> void {
      if (e == nullptr || plan.kind == BaseScanPlan::Kind::kEquality) return;
      if (e->kind == Expr::Kind::kBinary && e->bin_op == BinOp::kAnd) {
        self(self, e->lhs.get());
        self(self, e->rhs.get());
        return;
      }
      if (e->kind != Expr::Kind::kBinary) return;
      // Normalize to column-op-constant.
      auto column = column_of(*e->lhs);
      auto constant = column ? constant_of(*e->rhs) : std::nullopt;
      BinOp op = e->bin_op;
      if (!column || !constant) {
        column = column_of(*e->rhs);
        constant = column ? constant_of(*e->lhs) : std::nullopt;
        switch (op) {  // mirror the comparison
          case BinOp::kLt: op = BinOp::kGt; break;
          case BinOp::kLe: op = BinOp::kGe; break;
          case BinOp::kGt: op = BinOp::kLt; break;
          case BinOp::kGe: op = BinOp::kLe; break;
          default: break;
        }
      }
      if (!column || !constant || constant->is_null()) return;
      if (op == BinOp::kEq && !plan.partition &&
          source.table->partition_count() > 1 &&
          source.table->partition_column() == *column) {
        plan.partition = source.table->route(*constant);
      }
      const Index* index = source.table->find_index_on(*column);
      if (index == nullptr) return;

      if (op == BinOp::kEq) {
        plan.kind = BaseScanPlan::Kind::kEquality;
        plan.index = index;
        plan.key = *constant;
        return;
      }
      if (index->kind() != Index::Kind::kOrdered) return;
      BaseScanPlan& range = ranges[*column];
      range.kind = BaseScanPlan::Kind::kRange;
      range.index = index;
      if (op == BinOp::kGt || op == BinOp::kGe) {
        if (!range.lo || Value::compare_total(*constant, *range.lo) > 0) {
          range.lo = *constant;
        }
      } else if (op == BinOp::kLt || op == BinOp::kLe) {
        if (!range.hi || Value::compare_total(*constant, *range.hi) < 0) {
          range.hi = *constant;
        }
      }
    };
    visit(visit, predicate);
    if (source.partition && plan.partition &&
        *plan.partition != *source.partition) {
      // The explicit selector and an equality conjunct's routing disagree:
      // the scan is provably empty and touches nothing.
      BaseScanPlan empty;
      empty.empty = true;
      empty.partition = source.partition;
      return empty;
    }
    // One access-path cascade for pinned and unpinned scans alike:
    // equality probe, else the first bounded range, else full scan. A
    // selector then pins whichever path won — index paths stay worth
    // taking (their row ids are filtered by the row-id partition bits), so
    // a shard CTE whose body keeps an indexed equality (the rewritten
    // per-owner aggregates) probes instead of walking its partition heap.
    BaseScanPlan chosen = std::move(plan);
    if (chosen.kind != BaseScanPlan::Kind::kEquality) {
      for (auto& [column, range] : ranges) {
        if (range.lo || range.hi) {
          chosen = std::move(range);
          break;
        }
      }
    }
    if (source.partition) chosen.partition = source.partition;
    return chosen;
  }

  /// Schema snapshot validated on plan reuse (table may have been dropped
  /// and re-created with another layout since the plan was built).
  [[nodiscard]] static std::vector<ValueType> column_type_snapshot(
      const Table& table) {
    std::vector<ValueType> types;
    types.reserve(table.schema().column_count());
    for (const ColumnDef& col : table.schema().columns()) {
      types.push_back(col.type);
    }
    return types;
  }

  /// Compiles `e` into a batch program over the given source's base table.
  /// Params and already-materialized scalar subqueries resolve to their
  /// current values at compile time (re-validated per execution by
  /// bind_constants); anything unresolvable compiles as a NULL-typed slot.
  /// nullptr = the shape falls outside the VM (row-path fallback).
  [[nodiscard]] std::shared_ptr<const sql::ExprProgram> compile_program(
      const Expr& e, const ScanSource& source,
      const std::vector<ValueType>& column_types) const {
    const auto constant_value = [this](const Expr& c) -> std::optional<Value> {
      EvalCtx ctx{nullptr, params_, nullptr, &subquery_values_, nullptr};
      try {
        return eval_expr(c, ctx);
      } catch (const EvalError&) {
        return std::nullopt;  // dry-run analysis (explain): type unknown
      }
    };
    auto program = sql::ExprProgram::compile(
        e, source.base_slot, std::span(column_types), constant_value);
    if (program != nullptr && count_compiles_) {
      db_.count_expr_programs_compiled(1);
    }
    return program;
  }

  /// Binds one program's runtime-constant slots for this execution; no-op
  /// (true) for null programs. False = a param or subquery re-evaluated to a
  /// different type than at compile time, so this execution declines to the
  /// row path.
  [[nodiscard]] bool bind_program(const sql::ExprProgram* program,
                                  sql::ExprProgram::Bound& out,
                                  std::size_t& evals) {
    if (program == nullptr) return true;
    EvalCtx ctx{nullptr, params_, nullptr, &subquery_values_, nullptr};
    auto bound = program->bind_constants(
        [&](const Expr& e) { return eval_expr(e, ctx); });
    if (!bound) return false;
    out = std::move(*bound);
    ++evals;
    return true;
  }

  /// Runs one compiled program over a batch, bumping the VM counters.
  sql::ExprProgram::Result run_program(const sql::ExprProgram& program,
                                       sql::ExprProgram::Scratch& scratch,
                                       const sql::ExprProgram::Bound& bound,
                                       std::span<const Table::ColumnSlice> cols,
                                       const std::uint8_t* demand,
                                       std::size_t begin, std::size_t end) {
    db_.count_expr_vm_batch();
    db_.count_expr_vm_lanes(end - begin);
    return program.run(scratch, bound, cols, demand, begin, end);
  }

  /// Collects run_aggregation's aggregate list (items, HAVING, ORDER BY
  /// order, so finalized values land on the same Expr nodes eval_expr will
  /// look up) as kernel descriptors. Plain base-column arguments (and
  /// COUNT(*)) feed the kernels directly; any other argument is compiled to
  /// a batch program whose output lanes feed the same kernels. False when a
  /// call falls outside both: DISTINCT, an uncompilable argument, or a
  /// numeric-only aggregate (SUM/AVG/STDDEV/VARIANCE) over a non-numeric
  /// input — the row path raises as_double's diagnostic for that one.
  [[nodiscard]] bool collect_kernel_aggregates(
      const ScanSource& base, const std::vector<ValueType>& column_types,
      std::vector<sql::FusedScanPlan::Aggregate>& out) const {
    std::vector<const Expr*> agg_exprs;
    for (const auto& item : stmt_.items) {
      collect_aggregates(*item.expr, agg_exprs);
    }
    if (stmt_.having) collect_aggregates(*stmt_.having, agg_exprs);
    for (const auto& key : stmt_.order_by) {
      collect_aggregates(*key.expr, agg_exprs);
    }
    for (const Expr* agg : agg_exprs) {
      if (agg->distinct_arg) return false;
      sql::FusedScanPlan::Aggregate entry;
      entry.expr = agg;
      if (!agg->star_arg) {
        if (agg->args.empty()) return false;
        const Expr& arg = *agg->args[0];
        const bool numeric_only = agg->func == "SUM" || agg->func == "AVG" ||
                                  agg->func == "STDDEV" ||
                                  agg->func == "VARIANCE";
        if (arg.kind == Expr::Kind::kColumnRef &&
            arg.resolved_slot >= base.base_slot &&
            arg.resolved_slot < base.base_slot + column_types.size()) {
          entry.column = arg.resolved_slot - base.base_slot;
          const ValueType type = column_types[entry.column];
          if (numeric_only && type != ValueType::kInt &&
              type != ValueType::kDouble) {
            return false;
          }
        } else {
          entry.program = compile_program(arg, base, column_types);
          if (entry.program == nullptr) return false;
          const ValueType type = entry.program->result_type();
          // An all-NULL program result is fine for any kernel: no lane is
          // ever valid, so the aggregate sees the empty input.
          if (numeric_only && type != ValueType::kInt &&
              type != ValueType::kDouble && type != ValueType::kNull) {
            return false;
          }
        }
      }
      out.push_back(entry);
    }
    return true;
  }

  /// Structural analysis for the fused single-pass columnar evaluator.
  /// Eligible shape: single columnar base table, no joins, no GROUP BY
  /// (grouped statements go through analyze_grouped), every aggregate a
  /// supported non-DISTINCT call over a plain base column, COUNT(*), or a
  /// VM-compilable argument expression, no bare column reference outside
  /// aggregate arguments (global aggregation has no representative row on
  /// this path), and a WHERE clause that is either an AND of
  /// `column op constant` / `column IS [NOT] NULL` conjuncts or any
  /// boolean expression the VM compiles. Returns null when the statement
  /// doesn't fit.
  [[nodiscard]] std::shared_ptr<const sql::FusedScanPlan> analyze_fused(
      const ScanSource& base) const {
    using Plan = sql::FusedScanPlan;
    if (!stmt_.joins.empty() || !stmt_.group_by.empty()) return nullptr;
    const Table& table = *base.table;
    if (!table.columnar()) return nullptr;

    auto plan = std::make_shared<Plan>();
    plan->table = table.schema().name();
    plan->column_types = column_type_snapshot(table);

    if (!collect_kernel_aggregates(base, plan->column_types,
                                   plan->aggregates)) {
      return nullptr;
    }
    if (plan->aggregates.empty()) return nullptr;
    for (const auto& item : stmt_.items) {
      if (has_bare_column_ref(*item.expr)) return nullptr;
    }
    if (stmt_.having && has_bare_column_ref(*stmt_.having)) return nullptr;
    for (const auto& key : stmt_.order_by) {
      if (key.expr->kind != Expr::Kind::kAliasRef &&
          has_bare_column_ref(*key.expr)) {
        return nullptr;
      }
    }

    if (!analyze_where(base, plan->column_types, plan->conjuncts,
                       plan->where_program)) {
      return nullptr;
    }
    return plan;
  }

  /// WHERE analysis shared by both fused plans: the AND-of-simple-conjuncts
  /// decomposition keeps the dedicated comparison kernels; everything else
  /// compiles to one whole-WHERE program whose boolean lanes AND into the
  /// selection bitmap. False when neither fits.
  [[nodiscard]] bool analyze_where(
      const ScanSource& base, const std::vector<ValueType>& column_types,
      std::vector<sql::FusedScanPlan::Conjunct>& conjuncts,
      std::shared_ptr<const sql::ExprProgram>& where_program) const {
    if (!stmt_.where) return true;
    if (collect_fused_conjuncts(*stmt_.where, base, conjuncts)) return true;
    conjuncts.clear();  // a partial decomposition may have accumulated
    where_program = compile_program(*stmt_.where, base, column_types);
    if (where_program == nullptr) return false;
    const ValueType type = where_program->result_type();
    return type == ValueType::kBool || type == ValueType::kNull;
  }

  /// True when every bare (non-aggregate-argument) node of `e` has a
  /// per-group value on the grouped vectorized path: aggregate calls take
  /// their finalized values, nodes structurally equal to a compiled GROUP BY
  /// key expression take that key's value (recorded in plan.key_refs for
  /// EvalCtx pinning), and plain column refs must be plain-column GROUP BY
  /// keys (the synthesized representative row carries those). `key_strs`
  /// holds each program key's structural rendering ("" for column keys).
  [[nodiscard]] bool grouped_refs_covered(
      const Expr& e, const ScanSource& base, sql::FusedGroupPlan& plan,
      const std::vector<std::string>& key_strs) const {
    if (e.kind == Expr::Kind::kFuncCall && Binder::is_aggregate_name(e.func)) {
      return true;  // argument columns feed the kernels, not the output row
    }
    std::string rendered;
    for (std::size_t k = 0; k < key_strs.size(); ++k) {
      if (key_strs[k].empty()) continue;
      if (rendered.empty()) subquery_key(e, rendered);
      if (rendered == key_strs[k]) {
        plan.key_refs.emplace_back(&e, k);
        return true;
      }
    }
    if (e.kind == Expr::Kind::kColumnRef) {
      if (e.resolved_slot < base.base_slot) return false;
      const std::size_t column = e.resolved_slot - base.base_slot;
      for (const auto& key : plan.group_keys) {
        if (key.program == nullptr && key.column == column) return true;
      }
      return false;
    }
    if (e.lhs && !grouped_refs_covered(*e.lhs, base, plan, key_strs)) {
      return false;
    }
    if (e.rhs && !grouped_refs_covered(*e.rhs, base, plan, key_strs)) {
      return false;
    }
    for (const auto& arg : e.args) {
      if (!grouped_refs_covered(*arg, base, plan, key_strs)) return false;
    }
    return true;
  }

  /// Structural analysis for the grouped vectorized evaluator. Eligible
  /// shape: single columnar base table, no joins, every GROUP BY expression
  /// a plain base column reference or a VM-compilable key expression,
  /// supported aggregates (the fused path's rules; zero aggregates is fine
  /// — pure key deduplication), every bare column reference outside
  /// aggregate arguments covered per grouped_refs_covered, and the fused
  /// path's WHERE forms. Returns null when the statement doesn't fit.
  [[nodiscard]] std::shared_ptr<const sql::FusedGroupPlan> analyze_grouped(
      const ScanSource& base) const {
    if (!stmt_.joins.empty() || stmt_.group_by.empty()) return nullptr;
    const Table& table = *base.table;
    if (!table.columnar()) return nullptr;

    auto plan = std::make_shared<sql::FusedGroupPlan>();
    plan->table = table.schema().name();
    plan->column_types = column_type_snapshot(table);

    std::vector<std::string> key_strs;  // "" for plain-column keys
    for (const auto& g : stmt_.group_by) {
      sql::FusedGroupPlan::GroupKey key;
      key_strs.emplace_back();
      if (g->kind == Expr::Kind::kColumnRef &&
          g->resolved_slot >= base.base_slot &&
          g->resolved_slot < base.base_slot + plan->column_types.size()) {
        key.column = g->resolved_slot - base.base_slot;
      } else {
        key.program = compile_program(*g, base, plan->column_types);
        if (key.program == nullptr) return nullptr;
        subquery_key(*g, key_strs.back());
      }
      plan->group_keys.push_back(std::move(key));
    }

    if (!collect_kernel_aggregates(base, plan->column_types,
                                   plan->aggregates)) {
      return nullptr;
    }
    for (const auto& item : stmt_.items) {
      if (!grouped_refs_covered(*item.expr, base, *plan, key_strs)) {
        return nullptr;
      }
    }
    if (stmt_.having &&
        !grouped_refs_covered(*stmt_.having, base, *plan, key_strs)) {
      return nullptr;
    }
    for (const auto& key : stmt_.order_by) {
      if (key.expr->kind != Expr::Kind::kAliasRef &&
          !grouped_refs_covered(*key.expr, base, *plan, key_strs)) {
        return nullptr;
      }
    }

    if (!analyze_where(base, plan->column_types, plan->conjuncts,
                       plan->where_program)) {
      return nullptr;
    }
    return plan;
  }

  /// Decomposes an AND tree into fused-plan conjuncts; false when any
  /// conjunct falls outside the supported `column op constant` /
  /// `column IS [NOT] NULL` forms.
  [[nodiscard]] bool collect_fused_conjuncts(
      const Expr& e, const ScanSource& base,
      std::vector<sql::FusedScanPlan::Conjunct>& out) const {
    const auto column_of = [&](const Expr& side) -> std::optional<std::size_t> {
      if (side.kind != Expr::Kind::kColumnRef) return std::nullopt;
      if (side.resolved_slot < base.base_slot ||
          side.resolved_slot >= base.base_slot + base.column_count()) {
        return std::nullopt;
      }
      return side.resolved_slot - base.base_slot;
    };
    const auto is_constant = [](const Expr& side) {
      return side.kind == Expr::Kind::kLiteral ||
             side.kind == Expr::Kind::kParam ||
             side.kind == Expr::Kind::kSubquery;
    };

    if (e.kind == Expr::Kind::kBinary && e.bin_op == BinOp::kAnd) {
      return collect_fused_conjuncts(*e.lhs, base, out) &&
             collect_fused_conjuncts(*e.rhs, base, out);
    }
    if (e.kind == Expr::Kind::kIsNull) {
      const auto column = column_of(*e.lhs);
      if (!column) return false;
      sql::FusedScanPlan::Conjunct conjunct;
      conjunct.column = *column;
      conjunct.is_null_test = true;
      conjunct.negated = e.negated;
      out.push_back(conjunct);
      return true;
    }
    if (e.kind != Expr::Kind::kBinary) return false;
    BinOp op = e.bin_op;
    switch (op) {
      case BinOp::kEq:
      case BinOp::kNe:
      case BinOp::kLt:
      case BinOp::kLe:
      case BinOp::kGt:
      case BinOp::kGe:
        break;
      default:
        return false;
    }
    auto column = column_of(*e.lhs);
    const Expr* constant =
        column && is_constant(*e.rhs) ? e.rhs.get() : nullptr;
    if (constant == nullptr) {
      column = column_of(*e.rhs);
      constant = column && is_constant(*e.lhs) ? e.lhs.get() : nullptr;
      switch (op) {  // mirror the comparison
        case BinOp::kLt: op = BinOp::kGt; break;
        case BinOp::kLe: op = BinOp::kGe; break;
        case BinOp::kGt: op = BinOp::kLt; break;
        case BinOp::kGe: op = BinOp::kLe; break;
        default: break;
      }
    }
    if (!column || constant == nullptr) return false;
    sql::FusedScanPlan::Conjunct conjunct;
    conjunct.column = *column;
    conjunct.op = op;
    conjunct.constant = constant;
    out.push_back(conjunct);
    return true;
  }

  /// Entry point of the fast path: returns the (output row, order keys)
  /// pairs the scan + WHERE + run_aggregation pipeline would have produced,
  /// or nullopt to fall back to it. The structural verdict is cached on the
  /// statement (fused_plan / fused_rejected); everything value-dependent is
  /// re-derived here per execution.
  std::optional<std::vector<std::pair<Row, Row>>> try_vectorized_aggregation() {
    if (stmt_.fused_rejected) return std::nullopt;
    if (sources_.size() != 1) return std::nullopt;
    const ScanSource& base = sources_[0];
    if (base.table == nullptr) return std::nullopt;
    if (!stmt_.group_by.empty()) return try_grouped_vectorized(base);
    const Table& table = *base.table;

    const sql::FusedScanPlan* plan = stmt_.fused_plan.get();
    const bool reused = plan != nullptr;
    if (plan == nullptr) {
      auto built = analyze_fused(base);
      if (built == nullptr) {
        stmt_.fused_rejected = true;
        return std::nullopt;
      }
      stmt_.fused_plan = std::move(built);
      plan = stmt_.fused_plan.get();
    } else {
      // Validate the cached annotation against this execution's catalog:
      // the table may have been dropped and re-created with another layout
      // since the plan was built.
      if (!support::iequals(table.schema().name(), plan->table) ||
          !table.columnar() ||
          table.schema().column_count() != plan->column_types.size()) {
        return std::nullopt;
      }
      for (std::size_t i = 0; i < plan->column_types.size(); ++i) {
        if (table.schema().column(i).type != plan->column_types[i]) {
          return std::nullopt;
        }
      }
    }

    // Index probes beat a columnar partition walk when the planner found
    // one; the fused path only replaces full scans.
    const BaseScanPlan scan = plan_base_scan(stmt_.where.get(), base);
    if (scan.kind != BaseScanPlan::Kind::kFullScan) return std::nullopt;

    // Per-execution constants (parameters and subquery results change run
    // to run) and type compatibility — the row path raises the diagnostics
    // for pairs the kernels don't cover.
    std::vector<Value> constants(plan->conjuncts.size());
    EvalCtx const_ctx{nullptr, params_, nullptr, &subquery_values_, nullptr};
    for (std::size_t i = 0; i < plan->conjuncts.size(); ++i) {
      const auto& conjunct = plan->conjuncts[i];
      if (conjunct.is_null_test) continue;
      constants[i] = eval_expr(*conjunct.constant, const_ctx);
      if (!conjunct_types_supported(plan->column_types[conjunct.column],
                                    constants[i])) {
        return std::nullopt;
      }
    }

    // Compiled programs re-bind their runtime-constant slots the same way;
    // a type drift since compilation declines this execution.
    std::size_t program_evals = 0;
    sql::ExprProgram::Bound where_bound;
    if (!bind_program(plan->where_program.get(), where_bound, program_evals)) {
      return std::nullopt;
    }
    std::vector<sql::ExprProgram::Bound> agg_bounds(plan->aggregates.size());
    for (std::size_t a = 0; a < plan->aggregates.size(); ++a) {
      if (!bind_program(plan->aggregates[a].program.get(), agg_bounds[a],
                        program_evals)) {
        return std::nullopt;
      }
    }
    if (program_evals > 0) db_.count_expr_program_evals(program_evals);

    if (reused) db_.count_fused_plan_eval();
    return run_columnar_aggregation(table, *plan, constants, where_bound,
                                    agg_bounds, scan);
  }

  /// Selection bitmaps for partitions [first, first + count): one bitmap
  /// per partition, seeded from the live bits (tombstones never select) and
  /// narrowed batch-at-a-time — by each conjunct kernel, or by the compiled
  /// whole-WHERE program's boolean lanes (NULL-as-false; the live-seeded
  /// bitmap doubles as the program's demand mask, so `/`, `%` and SQRT
  /// raise exactly where the row path would have evaluated them). The
  /// filter stage fans out across the scan pool under the same gate as
  /// run_heap_scan; each worker owns a VM scratch. `live` and `nonempty`
  /// are the live-row and nonempty-partition totals over the same range
  /// (callers already have them for their own counters).
  std::vector<std::vector<std::uint8_t>> build_selection_bitmaps(
      const Table& table,
      const std::vector<sql::FusedScanPlan::Conjunct>& conjuncts,
      const sql::ExprProgram* where_program,
      const sql::ExprProgram::Bound& where_bound,
      const std::vector<ValueType>& column_types,
      const std::vector<Value>& constants, std::size_t first,
      std::size_t count, std::size_t live, std::size_t nonempty) {
    std::vector<std::vector<std::uint8_t>> sels(count);
    const auto filter_partition = [&](std::size_t index,
                                      sql::ExprProgram::Scratch& scratch) {
      const std::size_t p = first + index;
      const std::size_t lanes = table.partition_heap_size(p);
      std::vector<std::uint8_t>& sel = sels[index];
      const std::uint8_t* live_bits = table.live_bits(p);
      sel.assign(live_bits, live_bits + lanes);
      if (lanes == 0) return;
      if (where_program != nullptr) {
        std::vector<Table::ColumnSlice> columns(column_types.size());
        for (const std::size_t c : where_program->used_columns()) {
          columns[c] = table.column_slice(p, c);
        }
        for (std::size_t b = 0; b < lanes; b += kVectorBatch) {
          const std::size_t e = std::min(lanes, b + kVectorBatch);
          const sql::ExprProgram::Result res = run_program(
              *where_program, scratch, where_bound, columns, sel.data(), b, e);
          // Result lanes are batch-relative; undemanded lanes hold
          // unspecified values, so AND through the incoming bitmap.
          for (std::size_t i = b; i < e; ++i) {
            sel[i] &= static_cast<std::uint8_t>(res.valid[i - b] != 0 &&
                                                res.ints[i - b] != 0);
          }
        }
        return;
      }
      if (conjuncts.empty()) return;
      std::vector<Table::ColumnSlice> slices(conjuncts.size());
      for (std::size_t c = 0; c < conjuncts.size(); ++c) {
        slices[c] = table.column_slice(p, conjuncts[c].column);
      }
      for (std::size_t b = 0; b < lanes; b += kVectorBatch) {
        const std::size_t e = std::min(lanes, b + kVectorBatch);
        for (std::size_t c = 0; c < conjuncts.size(); ++c) {
          apply_conjunct_batch(conjuncts[c], constants[c],
                               column_types[conjuncts[c].column], slices[c],
                               b, e, sel.data());
        }
      }
    };

    const Database::ScanConfig& config = db_.scan_config();
    std::size_t workers =
        config.threads == 0 ? scan_pool().size() : config.threads;
    workers = std::min(workers, nonempty);
    if (env_->on_pool) workers = 1;  // pool tasks never block on the pool
    if (workers > 1 && live >= config.min_parallel_rows) {
      std::atomic<std::size_t> next{0};
      std::vector<std::future<void>> futures;
      futures.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        futures.push_back(scan_pool().submit([&] {
          sql::ExprProgram::Scratch scratch;
          while (true) {
            const std::size_t i = next.fetch_add(1);
            if (i >= count) return;
            filter_partition(i, scratch);
          }
        }));
      }
      std::exception_ptr first_error;
      for (auto& future : futures) {
        try {
          future.get();
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (first_error) std::rethrow_exception(first_error);
      db_.count_parallel_scan_batch();
    } else {
      sql::ExprProgram::Scratch scratch;
      for (std::size_t i = 0; i < count; ++i) filter_partition(i, scratch);
    }
    return sels;
  }

  /// The fused evaluator proper: selection bitmaps + aggregate kernels over
  /// the column vectors, partition-major in heap order. Aggregate
  /// accumulation stays serial in partition order so every RunningStats
  /// sees the row path's exact push sequence.
  std::vector<std::pair<Row, Row>> run_columnar_aggregation(
      const Table& table, const sql::FusedScanPlan& plan,
      const std::vector<Value>& constants,
      const sql::ExprProgram::Bound& where_bound,
      const std::vector<sql::ExprProgram::Bound>& agg_bounds,
      const BaseScanPlan& scan) {
    const std::size_t nparts = table.partition_count();
    std::size_t first = 0;
    std::size_t count = nparts;
    if (scan.empty) {
      db_.count_partitions_pruned(nparts);
      count = 0;
    } else if (scan.partition && nparts > 1) {
      first = *scan.partition;
      count = 1;
      db_.count_partitions_pruned(nparts - 1);
    }
    db_.count_partition_scans(count);
    db_.count_columnar_scans(count);

    std::size_t live = 0;
    std::size_t nonempty = 0;
    for (std::size_t p = first; p < first + count; ++p) {
      const std::size_t rows_in_partition = table.partition_live_count(p);
      live += rows_in_partition;
      if (rows_in_partition > 0) ++nonempty;
    }

    std::vector<std::vector<std::uint8_t>> sels = build_selection_bitmaps(
        table, plan.conjuncts, plan.where_program.get(), where_bound,
        plan.column_types, constants, first, count, live, nonempty);

    // Serial accumulation, partition-major in lane (= heap) order.
    const std::size_t naggs = plan.aggregates.size();
    std::vector<AggState> states(naggs);
    std::vector<MinMaxAcc> minmax(naggs);
    std::vector<AggKernel> kernels(naggs);
    std::vector<sql::ExprProgram::Scratch> scratches(naggs);
    bool any_program = false;
    for (std::size_t a = 0; a < naggs; ++a) {
      kernels[a] = agg_kernel_of(*plan.aggregates[a].expr);
      any_program |= plan.aggregates[a].program != nullptr;
    }
    std::uint64_t batches = 0;
    std::size_t selected = 0;
    for (std::size_t index = 0; index < count; ++index) {
      const std::size_t p = first + index;
      const std::size_t lanes = table.partition_heap_size(p);
      if (lanes == 0) continue;
      const std::uint8_t* sel = sels[index].data();
      std::vector<Table::ColumnSlice> slices(naggs);
      for (std::size_t a = 0; a < naggs; ++a) {
        if (plan.aggregates[a].column != static_cast<std::size_t>(-1)) {
          slices[a] = table.column_slice(p, plan.aggregates[a].column);
        }
      }
      std::vector<Table::ColumnSlice> columns;
      if (any_program) {
        columns.resize(plan.column_types.size());
        for (std::size_t a = 0; a < naggs; ++a) {
          if (plan.aggregates[a].program == nullptr) continue;
          for (const std::size_t c : plan.aggregates[a].program->used_columns()) {
            columns[c] = table.column_slice(p, c);
          }
        }
      }
      for (std::size_t b = 0; b < lanes; b += kVectorBatch) {
        const std::size_t e = std::min(lanes, b + kVectorBatch);
        for (std::size_t i = b; i < e; ++i) selected += sel[i];
        for (std::size_t a = 0; a < naggs; ++a) {
          const auto& agg = plan.aggregates[a];
          if (agg.program != nullptr) {
            // The selection bitmap doubles as the demand mask: the row path
            // evaluates aggregate arguments only for rows passing WHERE.
            // Result lanes are batch-relative, so the kernel runs over the
            // shifted selection pointer.
            const sql::ExprProgram::Result res =
                run_program(*agg.program, scratches[a], agg_bounds[a],
                            columns, sel, b, e);
            accumulate_batch(kernels[a], res.type, res.as_slice(e - b), 0,
                             e - b, sel + b, states[a], minmax[a]);
            continue;
          }
          const std::size_t column = agg.column;
          accumulate_batch(kernels[a],
                           column == static_cast<std::size_t>(-1)
                               ? ValueType::kNull
                               : plan.column_types[column],
                           slices[a], b, e, sel, states[a], minmax[a]);
        }
        ++batches;
      }
    }
    db_.count_vectorized_batches(batches);
    db_.count_rows_skipped_by_bitmap(live - selected);

    for (std::size_t a = 0; a < naggs; ++a) {
      if (kernels[a] != AggKernel::kMinMax || states[a].count == 0) continue;
      const ValueType type =
          plan.aggregates[a].program != nullptr
              ? plan.aggregates[a].program->result_type()
              : plan.column_types[plan.aggregates[a].column];
      states[a].min_value = minmax_value(type, minmax[a], /*max_side=*/false);
      states[a].max_value = minmax_value(type, minmax[a], /*max_side=*/true);
      states[a].has_minmax = true;
    }

    // Identical tail to run_aggregation's single-group output: finalize,
    // HAVING, project, order keys. Bare column refs were rejected at
    // analysis time, so the empty representative row is never read.
    std::unordered_map<const Expr*, Value> agg_values;
    for (std::size_t a = 0; a < plan.aggregates.size(); ++a) {
      agg_values[plan.aggregates[a].expr] =
          agg_finalize(*plan.aggregates[a].expr, states[a]);
    }
    std::vector<std::pair<Row, Row>> out;
    Row empty_row;
    EvalCtx ctx{&empty_row, params_, &agg_values, &subquery_values_, nullptr};
    if (stmt_.having && !eval_predicate(*stmt_.having, ctx)) return out;
    Row output;
    output.reserve(stmt_.items.size());
    for (const auto& item : stmt_.items) {
      output.push_back(eval_expr(*item.expr, ctx));
    }
    Row keys = eval_order_keys(ctx, output);
    out.emplace_back(std::move(output), std::move(keys));
    return out;
  }

  /// Grouped twin of try_vectorized_aggregation: hash GROUP BY over the
  /// column vectors. Same caching and validation discipline against the
  /// statement's fused_group_plan; the eligible shapes are disjoint (GROUP
  /// BY presence routes here), so the negative verdict shares
  /// fused_rejected.
  std::optional<std::vector<std::pair<Row, Row>>> try_grouped_vectorized(
      const ScanSource& base) {
    const Table& table = *base.table;

    const sql::FusedGroupPlan* plan = stmt_.fused_group_plan.get();
    const bool reused = plan != nullptr;
    if (plan == nullptr) {
      auto built = analyze_grouped(base);
      if (built == nullptr) {
        stmt_.fused_rejected = true;
        return std::nullopt;
      }
      stmt_.fused_group_plan = std::move(built);
      plan = stmt_.fused_group_plan.get();
    } else {
      // Same catalog re-validation as the global path: the table may have
      // been dropped and re-created with another layout.
      if (!support::iequals(table.schema().name(), plan->table) ||
          !table.columnar() ||
          table.schema().column_count() != plan->column_types.size()) {
        return std::nullopt;
      }
      for (std::size_t i = 0; i < plan->column_types.size(); ++i) {
        if (table.schema().column(i).type != plan->column_types[i]) {
          return std::nullopt;
        }
      }
    }

    const BaseScanPlan scan = plan_base_scan(stmt_.where.get(), base);
    if (scan.kind != BaseScanPlan::Kind::kFullScan) return std::nullopt;

    std::vector<Value> constants(plan->conjuncts.size());
    EvalCtx const_ctx{nullptr, params_, nullptr, &subquery_values_, nullptr};
    for (std::size_t i = 0; i < plan->conjuncts.size(); ++i) {
      const auto& conjunct = plan->conjuncts[i];
      if (conjunct.is_null_test) continue;
      constants[i] = eval_expr(*conjunct.constant, const_ctx);
      if (!conjunct_types_supported(plan->column_types[conjunct.column],
                                    constants[i])) {
        return std::nullopt;
      }
    }

    std::size_t program_evals = 0;
    sql::ExprProgram::Bound where_bound;
    if (!bind_program(plan->where_program.get(), where_bound, program_evals)) {
      return std::nullopt;
    }
    std::vector<sql::ExprProgram::Bound> key_bounds(plan->group_keys.size());
    for (std::size_t k = 0; k < plan->group_keys.size(); ++k) {
      if (!bind_program(plan->group_keys[k].program.get(), key_bounds[k],
                        program_evals)) {
        return std::nullopt;
      }
    }
    std::vector<sql::ExprProgram::Bound> agg_bounds(plan->aggregates.size());
    for (std::size_t a = 0; a < plan->aggregates.size(); ++a) {
      if (!bind_program(plan->aggregates[a].program.get(), agg_bounds[a],
                        program_evals)) {
        return std::nullopt;
      }
    }
    if (program_evals > 0) db_.count_expr_program_evals(program_evals);

    if (reused) db_.count_fused_plan_eval();
    return run_columnar_grouped(table, *plan, constants, where_bound,
                                key_bounds, agg_bounds, scan);
  }

  /// The grouped vectorized evaluator: selection bitmaps, then a hash group
  /// table keyed on the GROUP BY column lanes, with per-group aggregate
  /// state fed by the batch kernels. Group ids are assigned in first-seen
  /// (heap) order so every per-group push sequence is exactly the row
  /// path's subsequence; output replays run_aggregation's std::map order by
  /// sorting the groups with the same key comparator.
  std::vector<std::pair<Row, Row>> run_columnar_grouped(
      const Table& table, const sql::FusedGroupPlan& plan,
      const std::vector<Value>& constants,
      const sql::ExprProgram::Bound& where_bound,
      const std::vector<sql::ExprProgram::Bound>& key_bounds,
      const std::vector<sql::ExprProgram::Bound>& agg_bounds,
      const BaseScanPlan& scan) {
    const std::size_t nparts = table.partition_count();
    std::size_t first = 0;
    std::size_t count = nparts;
    if (scan.empty) {
      db_.count_partitions_pruned(nparts);
      count = 0;
    } else if (scan.partition && nparts > 1) {
      first = *scan.partition;
      count = 1;
      db_.count_partitions_pruned(nparts - 1);
    }
    db_.count_partition_scans(count);
    db_.count_columnar_scans(count);
    db_.count_grouped_vector_eval();

    std::size_t live = 0;
    std::size_t nonempty = 0;
    for (std::size_t p = first; p < first + count; ++p) {
      const std::size_t rows_in_partition = table.partition_live_count(p);
      live += rows_in_partition;
      if (rows_in_partition > 0) ++nonempty;
    }

    std::vector<std::vector<std::uint8_t>> sels = build_selection_bitmaps(
        table, plan.conjuncts, plan.where_program.get(), where_bound,
        plan.column_types, constants, first, count, live, nonempty);

    const std::size_t naggs = plan.aggregates.size();
    const std::size_t nkeys = plan.group_keys.size();
    std::vector<AggKernel> kernels(naggs);
    std::vector<sql::ExprProgram::Scratch> agg_scratches(naggs);
    bool any_program = false;
    for (std::size_t a = 0; a < naggs; ++a) {
      kernels[a] = agg_kernel_of(*plan.aggregates[a].expr);
      any_program |= plan.aggregates[a].program != nullptr;
    }
    // Per-key lane type and per-batch access: a plain-column key reads its
    // partition slice directly (offset 0); a compiled key's result lanes
    // are batch-relative, so the slice is refreshed per batch with the
    // batch start as offset.
    std::vector<ValueType> key_types(nkeys);
    std::vector<sql::ExprProgram::Scratch> key_scratches(nkeys);
    for (std::size_t k = 0; k < nkeys; ++k) {
      const auto& key = plan.group_keys[k];
      key_types[k] = key.program != nullptr
                         ? key.program->result_type()
                         : plan.column_types[key.column];
      any_program |= key.program != nullptr;
    }

    // Group table: keys[gid] is the materialized GROUP BY tuple, the index
    // maps key hash → candidate gids, and aggregate state is column-major
    // per aggregate so accumulate_grouped_batch indexes states[gid]
    // directly.
    std::vector<Row> keys;
    std::unordered_multimap<std::size_t, std::uint32_t> group_index;
    std::vector<std::vector<AggState>> states(naggs);
    std::vector<std::vector<MinMaxAcc>> minmax(naggs);

    std::uint64_t batches = 0;
    std::size_t selected = 0;
    std::vector<std::uint32_t> gids;
    for (std::size_t index = 0; index < count; ++index) {
      const std::size_t p = first + index;
      const std::size_t lanes = table.partition_heap_size(p);
      if (lanes == 0) continue;
      const std::uint8_t* sel = sels[index].data();
      // key_access[k] is the lane view the hash reads: partition-absolute
      // for plain columns, batch-relative (offset = batch start) for
      // compiled keys — group_of subtracts the offset per key.
      struct KeyAccess {
        Table::ColumnSlice slice;
        std::size_t offset = 0;
      };
      std::vector<KeyAccess> key_access(nkeys);
      for (std::size_t k = 0; k < nkeys; ++k) {
        if (plan.group_keys[k].program == nullptr) {
          key_access[k].slice = table.column_slice(p, plan.group_keys[k].column);
        }
      }
      std::vector<Table::ColumnSlice> agg_slices(naggs);
      for (std::size_t a = 0; a < naggs; ++a) {
        if (plan.aggregates[a].column != static_cast<std::size_t>(-1)) {
          agg_slices[a] = table.column_slice(p, plan.aggregates[a].column);
        }
      }
      std::vector<Table::ColumnSlice> columns;
      if (any_program) {
        columns.resize(plan.column_types.size());
        const auto load_used = [&](const sql::ExprProgram* program) {
          if (program == nullptr) return;
          for (const std::size_t c : program->used_columns()) {
            columns[c] = table.column_slice(p, c);
          }
        };
        for (std::size_t k = 0; k < nkeys; ++k) {
          load_used(plan.group_keys[k].program.get());
        }
        for (std::size_t a = 0; a < naggs; ++a) {
          load_used(plan.aggregates[a].program.get());
        }
      }
      const auto group_of = [&](std::size_t lane) -> std::uint32_t {
        std::size_t h = 1469598103934665603ULL;  // FNV-1a offset basis
        for (std::size_t k = 0; k < nkeys; ++k) {
          h = (h * 1099511628211ULL) ^
              group_lane_hash(key_types[k], key_access[k].slice,
                              lane - key_access[k].offset);
        }
        const auto [lo, hi] = group_index.equal_range(h);
        for (auto it = lo; it != hi; ++it) {
          const Row& key = keys[it->second];
          bool match = true;
          for (std::size_t k = 0; k < nkeys && match; ++k) {
            match = group_lane_equals(key_types[k], key_access[k].slice,
                                      lane - key_access[k].offset, key[k]);
          }
          if (match) return it->second;
        }
        const auto gid = static_cast<std::uint32_t>(keys.size());
        Row key;
        key.reserve(nkeys);
        for (std::size_t k = 0; k < nkeys; ++k) {
          key.push_back(group_lane_value(key_types[k], key_access[k].slice,
                                         lane - key_access[k].offset));
        }
        keys.push_back(std::move(key));
        group_index.emplace(h, gid);
        for (std::size_t a = 0; a < naggs; ++a) {
          states[a].emplace_back();
          minmax[a].emplace_back();
        }
        return gid;
      };
      gids.assign(lanes, 0);
      for (std::size_t b = 0; b < lanes; b += kVectorBatch) {
        const std::size_t e = std::min(lanes, b + kVectorBatch);
        for (std::size_t k = 0; k < nkeys; ++k) {
          const auto& key = plan.group_keys[k];
          if (key.program == nullptr) continue;
          const sql::ExprProgram::Result res = run_program(
              *key.program, key_scratches[k], key_bounds[k], columns, sel, b, e);
          key_access[k].slice = res.as_slice(e - b);
          key_access[k].offset = b;
        }
        for (std::size_t i = b; i < e; ++i) {
          if (sel[i] == 0) continue;
          ++selected;
          gids[i] = group_of(i);
        }
        for (std::size_t a = 0; a < naggs; ++a) {
          const auto& agg = plan.aggregates[a];
          if (agg.program != nullptr) {
            const sql::ExprProgram::Result res =
                run_program(*agg.program, agg_scratches[a], agg_bounds[a],
                            columns, sel, b, e);
            accumulate_grouped_batch(kernels[a], res.type, res.as_slice(e - b),
                                     0, e - b, sel + b, gids.data() + b,
                                     states[a], minmax[a]);
            continue;
          }
          const std::size_t column = agg.column;
          accumulate_grouped_batch(kernels[a],
                                   column == static_cast<std::size_t>(-1)
                                       ? ValueType::kNull
                                       : plan.column_types[column],
                                   agg_slices[a], b, e, sel, gids.data(),
                                   states[a], minmax[a]);
        }
        ++batches;
      }
    }
    db_.count_vectorized_batches(batches);
    db_.count_rows_skipped_by_bitmap(live - selected);
    db_.count_groups_built(keys.size());

    for (std::size_t a = 0; a < naggs; ++a) {
      if (kernels[a] != AggKernel::kMinMax) continue;
      const ValueType type =
          plan.aggregates[a].program != nullptr
              ? plan.aggregates[a].program->result_type()
              : plan.column_types[plan.aggregates[a].column];
      for (std::size_t g = 0; g < keys.size(); ++g) {
        if (states[a][g].count == 0) continue;
        states[a][g].min_value =
            minmax_value(type, minmax[a][g], /*max_side=*/false);
        states[a][g].max_value =
            minmax_value(type, minmax[a][g], /*max_side=*/true);
        states[a][g].has_minmax = true;
      }
    }

    // run_aggregation's std::map iterates groups in ascending key order;
    // replay that by sorting the group ids with the same lexicographic
    // comparator.
    std::vector<std::uint32_t> order(keys.size());
    for (std::size_t g = 0; g < order.size(); ++g) {
      order[g] = static_cast<std::uint32_t>(g);
    }
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const Row& x = keys[a];
                const Row& y = keys[b];
                for (std::size_t i = 0; i < x.size(); ++i) {
                  const int c = Value::compare_total(x[i], y[i]);
                  if (c != 0) return c < 0;
                }
                return false;
              });

    std::vector<std::pair<Row, Row>> out;
    out.reserve(order.size());
    for (const std::uint32_t g : order) {
      std::unordered_map<const Expr*, Value> agg_values;
      for (std::size_t a = 0; a < naggs; ++a) {
        agg_values[plan.aggregates[a].expr] =
            agg_finalize(*plan.aggregates[a].expr, states[a][g]);
      }
      // Bare refs were proven covered at analysis time: plain-column keys
      // ride the synthesized representative row, compiled keys pin their
      // per-group values onto the nodes key_refs recorded.
      Row rep(plan.column_types.size(), Value::null());
      for (std::size_t k = 0; k < nkeys; ++k) {
        if (plan.group_keys[k].program == nullptr) {
          rep[plan.group_keys[k].column] = keys[g][k];
        }
      }
      std::unordered_map<const Expr*, Value> pinned;
      for (const auto& [node, k] : plan.key_refs) pinned[node] = keys[g][k];
      EvalCtx ctx{&rep, params_, &agg_values, &subquery_values_, nullptr,
                  plan.key_refs.empty() ? nullptr : &pinned};
      if (stmt_.having && !eval_predicate(*stmt_.having, ctx)) continue;
      Row output;
      output.reserve(stmt_.items.size());
      for (const auto& item : stmt_.items) {
        output.push_back(eval_expr(*item.expr, ctx));
      }
      Row ord = eval_order_keys(ctx, output);
      out.emplace_back(std::move(output), std::move(ord));
    }
    return out;
  }

  /// Heap scan of a base table: every partition the plan did not prune, in
  /// partition order, heap order within each. Single-table statements fold
  /// the WHERE clause into the scan itself (the hot path stops producing
  /// rows a later pass would discard), and multi-partition scans above the
  /// configured row threshold fan out across the scan pool — each worker
  /// owns whole partitions, buckets merge in partition order, so the
  /// parallel row stream is byte-identical to the serial one.
  std::vector<Row> run_heap_scan(const Table& table, const BaseScanPlan& plan) {
    const std::size_t nparts = table.partition_count();
    std::size_t first = 0;
    std::size_t count = nparts;
    if (plan.empty) {
      // Selector and equality routing disagree: nothing can match.
      db_.count_partitions_pruned(nparts);
      if (stmt_.joins.empty() && stmt_.where) where_applied_ = true;
      return {};
    }
    if (plan.partition && nparts > 1) {
      first = *plan.partition;
      count = 1;
      db_.count_partitions_pruned(nparts - 1);
    }
    db_.count_partition_scans(count);

    const Expr* filter =
        stmt_.joins.empty() && stmt_.where ? stmt_.where.get() : nullptr;
    const auto scan_partition = [&](std::size_t p, std::vector<Row>& out) {
      table.for_each_live_row_in(p, [&](std::size_t, const Row& row) {
        if (filter != nullptr) {
          EvalCtx ctx{&row, params_, nullptr, &subquery_values_, nullptr};
          if (!eval_predicate(*filter, ctx)) return;
        }
        out.push_back(row);
      });
    };

    std::size_t live = 0;
    std::size_t nonempty = 0;
    for (std::size_t p = first; p < first + count; ++p) {
      const std::size_t rows_in_partition = table.partition_live_count(p);
      live += rows_in_partition;
      if (rows_in_partition > 0) ++nonempty;
    }

    const Database::ScanConfig& config = db_.scan_config();
    std::size_t workers =
        config.threads == 0 ? scan_pool().size() : config.threads;
    // Fan out only over partitions that actually hold rows: a scan whose
    // unpruned range is mostly empty partitions (skewed routing, heavy
    // deletes) would otherwise pay pool dispatch for workers that find
    // nothing to do, and a single loaded partition gains nothing from the
    // pool at all.
    workers = std::min(workers, nonempty);
    // Executions already on a scan-pool worker (parallel CTE bodies) scan
    // serially: blocking on the pool from inside it can deadlock the pool.
    if (env_->on_pool) workers = 1;

    std::vector<Row> rows;
    if (workers > 1 && live >= config.min_parallel_rows) {
      std::vector<std::vector<Row>> buckets(count);
      std::atomic<std::size_t> next{0};
      std::vector<std::future<void>> futures;
      futures.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        futures.push_back(scan_pool().submit([&] {
          while (true) {
            const std::size_t i = next.fetch_add(1);
            if (i >= count) return;
            scan_partition(first + i, buckets[i]);
          }
        }));
      }
      std::exception_ptr first_error;
      for (auto& future : futures) {
        try {
          future.get();
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (first_error) std::rethrow_exception(first_error);
      db_.count_parallel_scan_batch();
      std::size_t total = 0;
      for (const std::vector<Row>& bucket : buckets) total += bucket.size();
      rows.reserve(total);
      for (std::vector<Row>& bucket : buckets) {
        for (Row& row : bucket) rows.push_back(std::move(row));
      }
    } else {
      rows.reserve(live);
      for (std::size_t p = first; p < first + count; ++p) {
        scan_partition(p, rows);
      }
    }
    if (filter != nullptr) where_applied_ = true;
    return rows;
  }

  /// Finds an equi-join conjunct between earlier slots and the new table;
  /// returns (outer slot, inner column within new table).
  [[nodiscard]] static std::optional<std::pair<std::size_t, std::size_t>>
  equi_join_key(const Expr* on, const ScanSource& inner) {
    if (on == nullptr) return std::nullopt;
    if (on->kind == Expr::Kind::kBinary && on->bin_op == BinOp::kAnd) {
      if (auto lhs = equi_join_key(on->lhs.get(), inner)) return lhs;
      return equi_join_key(on->rhs.get(), inner);
    }
    if (on->kind != Expr::Kind::kBinary || on->bin_op != BinOp::kEq) {
      return std::nullopt;
    }
    const Expr& a = *on->lhs;
    const Expr& b = *on->rhs;
    if (a.kind != Expr::Kind::kColumnRef || b.kind != Expr::Kind::kColumnRef) {
      return std::nullopt;
    }
    const std::size_t inner_begin = inner.base_slot;
    const std::size_t inner_end = inner.base_slot + inner.column_count();
    const bool a_inner = a.resolved_slot >= inner_begin && a.resolved_slot < inner_end;
    const bool b_inner = b.resolved_slot >= inner_begin && b.resolved_slot < inner_end;
    if (a_inner == b_inner) return std::nullopt;
    if (b_inner) return std::make_pair(a.resolved_slot, b.resolved_slot - inner_begin);
    return std::make_pair(b.resolved_slot, a.resolved_slot - inner_begin);
  }

  /// Expression-key extension of the columnar hash join (the VM's join
  /// satellite): when the whole ON clause is a single `expr = expr`
  /// equality whose sides each compile over exactly one table, both sides'
  /// key lanes are materialized by the batch VM into owned buffers and the
  /// plain path's build/probe kernels consume them unchanged. Plain-column
  /// keys never arrive here — equi_join_key handles those, AND trees
  /// included. Declines (nullopt, row-path nested loop) when a side doesn't
  /// compile, the key types have no kernel, a bind re-types a constant, or
  /// a live double key lane holds NaN (compare_sql treats NaN as equal to
  /// everything; a hash probe can't reproduce that).
  std::optional<std::vector<Row>> try_expr_key_join(const ScanSource& base,
                                                    const ScanSource& inner,
                                                    const sql::Join& join,
                                                    const BaseScanPlan& plan) {
    if (join.on == nullptr || join.on->kind != Expr::Kind::kBinary ||
        join.on->bin_op != BinOp::kEq) {
      return std::nullopt;
    }
    const std::vector<ValueType> outer_types =
        column_type_snapshot(*base.table);
    const std::vector<ValueType> inner_types =
        column_type_snapshot(*inner.table);
    // Side assignment falls out of compilation: a program declines any
    // column slot outside its own table's range. Try lhs-over-outer /
    // rhs-over-inner, then the mirrored pairing.
    auto outer_prog = compile_program(*join.on->lhs, base, outer_types);
    auto inner_prog = outer_prog != nullptr
                          ? compile_program(*join.on->rhs, inner, inner_types)
                          : nullptr;
    if (inner_prog == nullptr) {
      outer_prog = compile_program(*join.on->rhs, base, outer_types);
      inner_prog = outer_prog != nullptr
                       ? compile_program(*join.on->lhs, inner, inner_types)
                       : nullptr;
    }
    if (inner_prog == nullptr) return std::nullopt;
    const auto kind =
        join_key_kind(outer_prog->result_type(), inner_prog->result_type());
    if (!kind) return std::nullopt;

    std::size_t program_evals = 0;
    sql::ExprProgram::Bound outer_bound;
    sql::ExprProgram::Bound inner_bound;
    if (!bind_program(outer_prog.get(), outer_bound, program_evals) ||
        !bind_program(inner_prog.get(), inner_bound, program_evals)) {
      return std::nullopt;
    }

    // Outer-side pruning, mirroring the plain-column path.
    const std::size_t nparts = base.table->partition_count();
    if (plan.empty) {
      db_.count_partitions_pruned(nparts);
      return std::vector<Row>{};
    }
    std::size_t outer_first = 0;
    std::size_t outer_count = nparts;
    std::size_t pruned = 0;
    if (plan.partition && nparts > 1) {
      outer_first = *plan.partition;
      outer_count = 1;
      pruned = nparts - 1;
    }
    const std::size_t inner_first = inner.partition ? *inner.partition : 0;
    const std::size_t inner_count =
        inner.partition ? 1 : inner.table->partition_count();

    std::size_t outer_live = 0;
    for (std::size_t p = outer_first; p < outer_first + outer_count; ++p) {
      outer_live += base.table->partition_live_count(p);
    }
    std::size_t inner_live = 0;
    for (std::size_t p = inner_first; p < inner_first + inner_count; ++p) {
      inner_live += inner.table->partition_live_count(p);
    }
    if (outer_live == 0 || inner_live == 0) {
      // The row path's nested loop never evaluates ON over an empty cross
      // product; skip the programs so key-expression errors match.
      if (pruned > 0) db_.count_partitions_pruned(pruned);
      db_.count_partition_scans(outer_count);
      db_.count_columnar_scans(outer_count + inner_count);
      return std::vector<Row>{};
    }

    /// One partition's VM-computed key lanes, owned (the Scratch buffers
    /// are reused across batches); exposed to the join kernels through a
    /// manufactured Table::KeySlice below.
    struct KeyLanes {
      std::vector<std::int64_t> ints;
      std::vector<double> reals;
      std::vector<std::string> strs;
      std::vector<std::uint8_t> valid;
      std::size_t partition = 0;
      std::size_t lanes = 0;
    };
    // Materializes one side's key lanes with the live bitmap as the demand
    // mask (a dead lane's key is never read — usable() filters by live).
    // False: a live valid double key lane holds NaN, decline the join.
    const auto materialize =
        [this](const Table& table, const sql::ExprProgram& program,
               const sql::ExprProgram::Bound& bound, std::size_t pfirst,
               std::size_t pcount, std::vector<KeyLanes>& out) -> bool {
      const ValueType type = program.result_type();
      sql::ExprProgram::Scratch scratch;
      std::vector<Table::ColumnSlice> columns(table.schema().column_count());
      out.resize(pcount);
      for (std::size_t index = 0; index < pcount; ++index) {
        const std::size_t p = pfirst + index;
        const std::size_t lanes = table.partition_heap_size(p);
        KeyLanes& dst = out[index];
        dst.partition = p;
        dst.lanes = lanes;
        dst.valid.resize(lanes);
        if (type == ValueType::kString) {
          dst.strs.resize(lanes);
        } else if (type == ValueType::kDouble) {
          dst.reals.resize(lanes);
        } else {
          dst.ints.resize(lanes);
        }
        if (lanes == 0) continue;
        for (const std::size_t c : program.used_columns()) {
          columns[c] = table.column_slice(p, c);
        }
        const std::uint8_t* live = table.live_bits(p);
        for (std::size_t b = 0; b < lanes; b += kVectorBatch) {
          const std::size_t e = std::min(lanes, b + kVectorBatch);
          const auto res =
              run_program(program, scratch, bound, columns, live, b, e);
          for (std::size_t i = b; i < e; ++i) {
            dst.valid[i] = res.valid[i - b];
          }
          if (type == ValueType::kString) {
            for (std::size_t i = b; i < e; ++i) dst.strs[i] = res.strs[i - b];
          } else if (type == ValueType::kDouble) {
            for (std::size_t i = b; i < e; ++i) {
              dst.reals[i] = res.reals[i - b];
              if (live[i] && dst.valid[i] && std::isnan(dst.reals[i])) {
                return false;
              }
            }
          } else {
            for (std::size_t i = b; i < e; ++i) dst.ints[i] = res.ints[i - b];
          }
        }
      }
      return true;
    };

    std::vector<KeyLanes> outer_lanes;
    std::vector<KeyLanes> inner_lanes;
    if (!materialize(*base.table, *outer_prog, outer_bound, outer_first,
                     outer_count, outer_lanes) ||
        !materialize(*inner.table, *inner_prog, inner_bound, inner_first,
                     inner_count, inner_lanes)) {
      return std::nullopt;  // NaN key: the nested loop matches it, we can't
    }
    // Committed to the columnar path — count only now, so a NaN decline
    // leaves the row path's counters untouched.
    if (program_evals > 0) db_.count_expr_program_evals(program_evals);
    if (pruned > 0) db_.count_partitions_pruned(pruned);
    db_.count_partition_scans(outer_count);
    db_.count_columnar_scans(outer_count + inner_count);

    const auto to_key_slices = [](std::vector<KeyLanes>& side, ValueType type,
                                  const Table& table) {
      std::vector<Table::KeySlice> slices;
      slices.reserve(side.size());
      for (KeyLanes& kl : side) {
        Table::KeySlice ks;
        ks.column.size = kl.lanes;
        ks.column.valid = kl.valid.data();
        if (type == ValueType::kString) {
          ks.column.strs = kl.strs.data();
        } else if (type == ValueType::kDouble) {
          ks.column.reals = kl.reals.data();
        } else {
          ks.column.ints = kl.ints.data();
        }
        ks.live = table.live_bits(kl.partition);
        ks.partition = kl.partition;
        slices.push_back(ks);
      }
      return slices;
    };
    const std::vector<Table::KeySlice> outer_slices =
        to_key_slices(outer_lanes, outer_prog->result_type(), *base.table);
    const std::vector<Table::KeySlice> inner_slices =
        to_key_slices(inner_lanes, inner_prog->result_type(), *inner.table);

    // From here the plain-column path repeats verbatim: build from the
    // smaller side, probe the other, restore row emission order.
    const bool build_is_outer = outer_live < inner_live;
    const std::vector<Table::KeySlice>& build =
        build_is_outer ? outer_slices : inner_slices;
    const std::vector<Table::KeySlice>& probe =
        build_is_outer ? inner_slices : outer_slices;

    std::uint64_t probed = 0;
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    switch (*kind) {
      case JoinKeyKind::kNumeric:
        pairs = columnar_join_pairs<double>(
            build, probe, build_is_outer, probed,
            [](const Table::ColumnSlice& s, std::size_t i) {
              const double d = s.ints != nullptr
                                   ? static_cast<double>(s.ints[i])
                                   : s.reals[i];
              return d == 0.0 ? 0.0 : d;
            });
        break;
      case JoinKeyKind::kBool:
      case JoinKeyKind::kDateTime:
        pairs = columnar_join_pairs<std::int64_t>(
            build, probe, build_is_outer, probed,
            [](const Table::ColumnSlice& s, std::size_t i) {
              return s.ints[i];
            });
        break;
      case JoinKeyKind::kString:
        pairs = columnar_join_pairs<std::string_view>(
            build, probe, build_is_outer, probed,
            [](const Table::ColumnSlice& s, std::size_t i) {
              return std::string_view(s.strs[i]);
            });
        break;
    }
    db_.count_hash_join_build();
    db_.count_join_lanes_probed(probed);

    if (build_is_outer) std::sort(pairs.begin(), pairs.end());

    std::vector<Row> joined;
    joined.reserve(pairs.size());
    for (const auto& [outer_id, inner_id] : pairs) {
      Row combined = base.table->row(outer_id);
      const Row& inner_row = inner.table->row(inner_id);
      combined.insert(combined.end(), inner_row.begin(), inner_row.end());
      EvalCtx ctx{&combined, params_, nullptr, &subquery_values_, nullptr};
      if (eval_predicate(*join.on, ctx)) {
        joined.push_back(std::move(combined));
      }
    }
    return joined;
  }

  /// Columnar hash equi-join over the base table and the first join: build
  /// a hash table from the smaller side's key column slice (tombstoned and
  /// NULL lanes never enter — a NULL key can't satisfy the ON equality),
  /// probe with the other side's slice, and assemble rows only for
  /// surviving lane pairs. Emission is outer-scan-major with inner-scan
  /// order within each outer row — byte-identical to the row hash join.
  /// Returns nullopt to fall back when either side isn't columnar, the ON
  /// clause has no equality conjunct on a base column (try_expr_key_join
  /// then gets a shot at a computed key), the key types have no kernel, or
  /// an inner index makes the indexed nested loop cheaper.
  std::optional<std::vector<Row>> try_columnar_hash_join(
      const ScanSource& base, const BaseScanPlan& plan) {
    if (base.table == nullptr || !base.table->columnar()) return std::nullopt;
    const sql::Join& join = stmt_.joins[0];
    const ScanSource& inner = sources_[1];
    if (inner.table == nullptr || !inner.table->columnar()) {
      return std::nullopt;
    }
    const auto key = equi_join_key(join.on.get(), inner);
    if (!key) return try_expr_key_join(base, inner, join, plan);
    if (key->first >= base.column_count()) return std::nullopt;
    if (inner.table->find_index_on(key->second) != nullptr) {
      return std::nullopt;  // the indexed nested loop wins
    }
    const auto kind =
        join_key_kind(base.table->schema().column(key->first).type,
                      inner.table->schema().column(key->second).type);
    if (!kind) return std::nullopt;

    // Outer-side pruning, mirroring run_heap_scan.
    const std::size_t nparts = base.table->partition_count();
    if (plan.empty) {
      db_.count_partitions_pruned(nparts);
      return std::vector<Row>{};
    }
    std::size_t outer_first = 0;
    std::size_t outer_count = nparts;
    if (plan.partition && nparts > 1) {
      outer_first = *plan.partition;
      outer_count = 1;
      db_.count_partitions_pruned(nparts - 1);
    }
    const std::size_t inner_count =
        inner.partition ? 1 : inner.table->partition_count();
    db_.count_partition_scans(outer_count);
    db_.count_columnar_scans(outer_count + inner_count);

    std::vector<Table::KeySlice> outer_slices;
    outer_slices.reserve(outer_count);
    std::size_t outer_live = 0;
    for (std::size_t p = outer_first; p < outer_first + outer_count; ++p) {
      outer_slices.push_back(base.table->key_slice(p, key->first));
      outer_live += base.table->partition_live_count(p);
    }
    std::vector<Table::KeySlice> inner_slices =
        inner.table->key_slices(key->second, inner.partition);
    std::size_t inner_live = 0;
    for (const Table::KeySlice& s : inner_slices) {
      inner_live += inner.table->partition_live_count(s.partition);
    }

    // Build from the smaller side; ties build from the inner source (the
    // row hash join's only choice).
    const bool build_is_outer = outer_live < inner_live;
    const std::vector<Table::KeySlice>& build =
        build_is_outer ? outer_slices : inner_slices;
    const std::vector<Table::KeySlice>& probe =
        build_is_outer ? inner_slices : outer_slices;

    std::uint64_t probed = 0;
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    switch (*kind) {
      case JoinKeyKind::kNumeric:
        // Ints compare through double (the compare_total class) and ±0.0
        // collapses so hash equality matches value equality.
        pairs = columnar_join_pairs<double>(
            build, probe, build_is_outer, probed,
            [](const Table::ColumnSlice& s, std::size_t i) {
              const double d = s.ints != nullptr
                                   ? static_cast<double>(s.ints[i])
                                   : s.reals[i];
              return d == 0.0 ? 0.0 : d;
            });
        break;
      case JoinKeyKind::kBool:
      case JoinKeyKind::kDateTime:
        pairs = columnar_join_pairs<std::int64_t>(
            build, probe, build_is_outer, probed,
            [](const Table::ColumnSlice& s, std::size_t i) {
              return s.ints[i];
            });
        break;
      case JoinKeyKind::kString:
        // Views into the column vectors: stable for this statement's
        // lifetime (DDL/DML never interleaves with an executing SELECT).
        pairs = columnar_join_pairs<std::string_view>(
            build, probe, build_is_outer, probed,
            [](const Table::ColumnSlice& s, std::size_t i) {
              return std::string_view(s.strs[i]);
            });
        break;
    }
    db_.count_hash_join_build();
    db_.count_join_lanes_probed(probed);

    // Build-from-inner already emits outer-major (probe order) with
    // insertion (= inner scan) order per key. Build-from-outer emits
    // probe-major; row-id numeric order is scan order, so one sort
    // restores the row path's emission order.
    if (build_is_outer) std::sort(pairs.begin(), pairs.end());

    std::vector<Row> joined;
    joined.reserve(pairs.size());
    for (const auto& [outer_id, inner_id] : pairs) {
      Row combined = base.table->row(outer_id);
      const Row& inner_row = inner.table->row(inner_id);
      combined.insert(combined.end(), inner_row.begin(), inner_row.end());
      EvalCtx ctx{&combined, params_, nullptr, &subquery_values_, nullptr};
      if (!join.on || eval_predicate(*join.on, ctx)) {
        joined.push_back(std::move(combined));
      }
    }
    return joined;
  }

  std::vector<Row> scan_and_join() {
    std::vector<Row> rows;
    if (!stmt_.from) {
      rows.emplace_back();  // one empty row: SELECT 1+1
      return rows;
    }

    // Base scan, optionally via index (equality probe or ordered range);
    // derived (CTE) sources have no indexes and copy their rows directly.
    // When both sides of the first join are columnar and the ON clause has
    // an equality conjunct, the columnar hash join consumes the base scan
    // and the first join together (first_join skips it below).
    const ScanSource& base = sources_[0];
    std::size_t first_join = 0;
    bool base_scanned = false;
    if (base.derived != nullptr) {
      rows = base.derived->rows;
      base_scanned = true;
    } else {
      const BaseScanPlan plan = plan_base_scan(stmt_.where.get(), base);
      if (plan.kind == BaseScanPlan::Kind::kFullScan && !stmt_.joins.empty()) {
        if (auto joined = try_columnar_hash_join(base, plan)) {
          rows = std::move(*joined);
          base_scanned = true;
          first_join = 1;
        }
      }
      if (!base_scanned) {
        switch (plan.kind) {
          case BaseScanPlan::Kind::kEquality:
          case BaseScanPlan::Kind::kRange: {
            const std::vector<std::size_t> base_row_ids =
                plan.kind == BaseScanPlan::Kind::kEquality
                    ? plan.index->equal_range(plan.key)
                    : plan.index->range_open(plan.lo ? &*plan.lo : nullptr,
                                             plan.hi ? &*plan.hi : nullptr);
            rows.reserve(base_row_ids.size());
            for (const std::size_t id : base_row_ids) {
              if (!base.table->is_live(id)) continue;
              // A PARTITION (k) selector keeps the probe but drops foreign
              // shards' ids (probes aggregate across shards).
              if (plan.partition && row_id_partition(id) != *plan.partition) {
                continue;
              }
              rows.push_back(base.table->row(id));
            }
            break;
          }
          case BaseScanPlan::Kind::kFullScan:
            rows = run_heap_scan(*base.table, plan);
            break;
        }
      }
    }

    for (std::size_t j = first_join; j < stmt_.joins.size(); ++j) {
      const sql::Join& join = stmt_.joins[j];
      const ScanSource& inner = sources_[j + 1];
      std::vector<Row> joined;

      // Iterates the inner source's rows regardless of kind (zero-copy: the
      // visitor walks the partition heaps without materializing an id list).
      // A `PARTITION (k)` selector restricts the walk to that partition.
      const auto each_inner_row = [&inner](auto&& fn) {
        if (inner.table != nullptr) {
          if (inner.partition) {
            inner.table->for_each_live_row_in(
                *inner.partition,
                [&fn](std::size_t, const Row& row) { fn(row); });
          } else {
            inner.table->for_each_live_row(
                [&fn](std::size_t, const Row& row) { fn(row); });
          }
        } else {
          for (const Row& row : inner.derived->rows) fn(row);
        }
      };

      const auto key = equi_join_key(join.on.get(), inner);
      const Index* inner_index =
          key && inner.table != nullptr ? inner.table->find_index_on(key->second)
                                        : nullptr;
      if (key && inner_index != nullptr) {
        // Indexed nested-loop join: probe the inner index per outer row —
        // O(|outer|) probes; the pushdown evaluator's per-context queries
        // rely on this staying cheap when the inner table is large.
        for (const Row& outer : rows) {
          for (const std::size_t id : inner_index->equal_range(outer[key->first])) {
            if (!inner.table->is_live(id)) continue;
            // The probe aggregates shards; honor an explicit selector.
            if (inner.partition && row_id_partition(id) != *inner.partition) {
              continue;
            }
            Row combined = outer;
            const Row& inner_row = inner.table->row(id);
            combined.insert(combined.end(), inner_row.begin(), inner_row.end());
            EvalCtx ctx{&combined, params_, nullptr, &subquery_values_, nullptr};
            if (!join.on || eval_predicate(*join.on, ctx)) {
              joined.push_back(std::move(combined));
            }
          }
        }
      } else if (key) {
        // Hash join: build on the inner source, probe with outer rows. Each
        // key's matches are kept in inner-scan order (a multimap's
        // equal_range order is unspecified), so emission is outer-major
        // with inner-scan order within — the order the columnar hash join
        // reproduces.
        std::unordered_map<Value, std::vector<const Row*>, ValueHash,
                           ValueEqTotal>
            built;
        each_inner_row([&](const Row& inner_row) {
          built[inner_row[key->second]].push_back(&inner_row);
        });
        for (const Row& outer : rows) {
          const auto it = built.find(outer[key->first]);
          if (it == built.end()) continue;
          for (const Row* match : it->second) {
            Row combined = outer;
            combined.insert(combined.end(), match->begin(), match->end());
            EvalCtx ctx{&combined, params_, nullptr, &subquery_values_, nullptr};
            if (!join.on || eval_predicate(*join.on, ctx)) {
              joined.push_back(std::move(combined));
            }
          }
        }
      } else {
        for (const Row& outer : rows) {
          each_inner_row([&](const Row& inner_row) {
            Row combined = outer;
            combined.insert(combined.end(), inner_row.begin(), inner_row.end());
            EvalCtx ctx{&combined, params_, nullptr, &subquery_values_, nullptr};
            if (!join.on || eval_predicate(*join.on, ctx)) {
              joined.push_back(std::move(combined));
            }
          });
        }
      }
      rows = std::move(joined);
    }
    return rows;
  }

  [[nodiscard]] bool needs_aggregation() const {
    if (!stmt_.group_by.empty()) return true;
    std::vector<const Expr*> aggs;
    for (const auto& item : stmt_.items) collect_aggregates(*item.expr, aggs);
    if (stmt_.having) collect_aggregates(*stmt_.having, aggs);
    for (const auto& key : stmt_.order_by) collect_aggregates(*key.expr, aggs);
    return !aggs.empty();
  }

  std::vector<std::pair<Row, Row>> run_aggregation(const std::vector<Row>& rows) {
    std::vector<const Expr*> agg_exprs;
    for (const auto& item : stmt_.items) collect_aggregates(*item.expr, agg_exprs);
    if (stmt_.having) collect_aggregates(*stmt_.having, agg_exprs);
    for (const auto& key : stmt_.order_by) collect_aggregates(*key.expr, agg_exprs);

    struct Group {
      Row representative;
      bool has_rows = false;
      std::vector<AggState> states;
    };
    struct RowLess {
      bool operator()(const Row& a, const Row& b) const {
        for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
          const int c = Value::compare_total(a[i], b[i]);
          if (c != 0) return c < 0;
        }
        return a.size() < b.size();
      }
    };
    std::map<Row, Group, RowLess> groups;

    for (const Row& row : rows) {
      EvalCtx ctx{&row, params_, nullptr, &subquery_values_, nullptr};
      Row key;
      key.reserve(stmt_.group_by.size());
      for (const auto& g : stmt_.group_by) key.push_back(eval_expr(*g, ctx));
      Group& group = groups[key];
      if (!group.has_rows) {
        group.representative = row;
        group.has_rows = true;
        group.states.resize(agg_exprs.size());
      }
      for (std::size_t i = 0; i < agg_exprs.size(); ++i) {
        agg_accumulate(*agg_exprs[i], group.states[i], ctx);
      }
    }
    // Global aggregation over an empty input still yields one group.
    if (groups.empty() && stmt_.group_by.empty()) {
      Group& group = groups[Row{}];
      group.states.resize(agg_exprs.size());
      group.has_rows = false;
    }

    std::vector<std::pair<Row, Row>> out;
    for (auto& [key, group] : groups) {
      std::unordered_map<const Expr*, Value> agg_values;
      for (std::size_t i = 0; i < agg_exprs.size(); ++i) {
        agg_values[agg_exprs[i]] = agg_finalize(*agg_exprs[i], group.states[i]);
      }
      const Row* rep = group.has_rows ? &group.representative : nullptr;
      Row empty_row;
      EvalCtx ctx{rep ? rep : &empty_row, params_, &agg_values,
                  &subquery_values_, nullptr};
      if (stmt_.having && !eval_predicate(*stmt_.having, ctx)) continue;
      Row output;
      output.reserve(stmt_.items.size());
      for (const auto& item : stmt_.items) {
        output.push_back(eval_expr(*item.expr, ctx));
      }
      Row keys = eval_order_keys(ctx, output);
      out.emplace_back(std::move(output), std::move(keys));
    }
    return out;
  }

  Row eval_order_keys(EvalCtx ctx, const Row& output) {
    Row keys;
    keys.reserve(stmt_.order_by.size());
    ctx.output_row = &output;
    for (const auto& key : stmt_.order_by) {
      keys.push_back(eval_expr(*key.expr, ctx));
    }
    return keys;
  }

  [[nodiscard]] std::vector<std::string> output_names() const {
    std::vector<std::string> names;
    names.reserve(stmt_.items.size());
    for (const auto& item : stmt_.items) {
      if (!item.alias.empty()) {
        names.push_back(item.alias);
      } else if (item.expr->kind == Expr::Kind::kColumnRef) {
        names.push_back(item.expr->column);
      } else {
        names.push_back(item.expr->to_string());
      }
    }
    return names;
  }

  Database& db_;
  sql::SelectStmt& stmt_;
  std::span<const Value> params_;
  /// This statement's CTE scope: chained to the enclosing statement's and
  /// filled as the WITH clause materializes. Deque keeps result addresses
  /// stable while entries accumulate.
  CteScope scope_;
  std::deque<QueryResult> cte_results_;
  ExecEnv* env_;
  /// Externally-materialized CTE results (scatter/gather injection); null
  /// for ordinary executions.
  const CteScope* injected_ = nullptr;
  std::vector<ScanSource> sources_;
  std::unordered_map<const Expr*, Value> subquery_values_;
  /// Set when the base heap scan already applied the WHERE clause
  /// (single-table statements); run() must not filter twice.
  bool where_applied_ = false;
  /// Off in the explain_verdict path: analysis-only compiles are discarded
  /// with the throwaway parse tree and must not move expr_programs_compiled.
  bool count_compiles_ = true;
};

// ---------------------------------------------------------------------------
// DML / DDL execution

QueryResult exec_create_table(Database& db, const sql::CreateTableStmt& stmt) {
  if (stmt.if_not_exists && db.find_table(stmt.schema.name()) != nullptr) {
    return {};
  }
  db.create_table(stmt.schema);
  return {};
}

QueryResult exec_create_index(Database& db, const sql::CreateIndexStmt& stmt) {
  Table& table = db.table(stmt.table);
  const auto col = table.schema().find_column(stmt.column);
  if (!col) {
    throw EvalError(support::cat("unknown column '", stmt.column, "' in table ",
                                 stmt.table));
  }
  table.create_index(stmt.index_name, *col,
                     stmt.ordered ? Index::Kind::kOrdered : Index::Kind::kHash);
  return {};
}

QueryResult exec_insert(Database& db, const sql::InsertStmt& stmt,
                        std::span<const Value> params) {
  Table& table = db.table(stmt.table);
  const TableSchema& schema = table.schema();

  std::vector<std::size_t> positions;
  if (stmt.columns.empty()) {
    positions.resize(schema.column_count());
    for (std::size_t i = 0; i < positions.size(); ++i) positions[i] = i;
  } else {
    for (const std::string& name : stmt.columns) {
      const auto col = schema.find_column(name);
      if (!col) {
        throw EvalError(support::cat("unknown column '", name, "' in table ",
                                     stmt.table));
      }
      positions.push_back(*col);
    }
  }

  QueryResult result;
  EvalCtx ctx{nullptr, params, nullptr, nullptr, nullptr};
  for (const auto& exprs : stmt.rows) {
    if (exprs.size() != positions.size()) {
      throw EvalError(support::cat("INSERT expects ", positions.size(),
                                   " values, got ", exprs.size()));
    }
    Row row(schema.column_count(), Value::null());
    for (std::size_t i = 0; i < exprs.size(); ++i) {
      row[positions[i]] = eval_expr(*exprs[i], ctx);
    }
    table.insert(std::move(row));
    ++result.affected_rows;
  }
  return result;
}

QueryResult exec_update(Database& db, sql::UpdateStmt& stmt,
                        std::span<const Value> params) {
  Table& table = db.table(stmt.table);
  Binder binder(db, params);
  std::vector<ScanSource> sources{
      {&table, nullptr, std::nullopt, table.schema().name(), 0}};
  std::vector<std::pair<std::size_t, Expr*>> sets;
  for (auto& [name, expr] : stmt.assignments) {
    const auto col = table.schema().find_column(name);
    if (!col) {
      throw EvalError(support::cat("unknown column '", name, "' in table ",
                                   stmt.table));
    }
    binder.bind_expr(*expr, sources, /*allow_aggregates=*/false);
    sets.emplace_back(*col, expr.get());
  }
  if (stmt.where) {
    binder.bind_expr(*stmt.where, sources, /*allow_aggregates=*/false);
  }

  QueryResult result;
  for (const std::size_t id : table.live_rows()) {
    const Row& row = table.row(id);
    EvalCtx ctx{&row, params, nullptr, nullptr, nullptr};
    if (stmt.where && !eval_predicate(*stmt.where, ctx)) continue;
    Row updated = row;
    for (const auto& [col, expr] : sets) {
      updated[col] = eval_expr(*expr, ctx);
    }
    table.update(id, std::move(updated));
    ++result.affected_rows;
  }
  return result;
}

QueryResult exec_delete(Database& db, sql::DeleteStmt& stmt,
                        std::span<const Value> params) {
  Table& table = db.table(stmt.table);
  Binder binder(db, params);
  std::vector<ScanSource> sources{
      {&table, nullptr, std::nullopt, table.schema().name(), 0}};
  if (stmt.where) {
    binder.bind_expr(*stmt.where, sources, /*allow_aggregates=*/false);
  }
  QueryResult result;
  for (const std::size_t id : table.live_rows()) {
    const Row& row = table.row(id);
    EvalCtx ctx{&row, params, nullptr, nullptr, nullptr};
    if (stmt.where && !eval_predicate(*stmt.where, ctx)) continue;
    table.erase(id);
    ++result.affected_rows;
  }
  return result;
}

QueryResult exec_drop(Database& db, const sql::DropTableStmt& stmt) {
  if (!db.drop_table(stmt.table) && !stmt.if_exists) {
    throw EvalError(support::cat("unknown table '", stmt.table, "'"));
  }
  return {};
}

}  // namespace

// ---------------------------------------------------------------------------
// QueryResult helpers

std::size_t QueryResult::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (support::iequals(columns[i], name)) return i;
  }
  throw support::EvalError(support::cat("no column named '", name, "'"));
}

std::string QueryResult::to_table() const {
  std::string out;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) out += " | ";
    out += columns[c];
  }
  out += '\n';
  for (const Row& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += " | ";
      out += row[c].to_display();
    }
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Database facade

bool Database::CaseInsensitiveLess::operator()(const std::string& a,
                                               const std::string& b) const {
  return support::to_lower(a) < support::to_lower(b);
}

Table& Database::create_table(TableSchema schema) {
  const std::string name = schema.name();
  if (tables_.contains(name)) {
    throw EvalError(support::cat("table '", name, "' already exists"));
  }
  auto [it, inserted] =
      tables_.emplace(name, std::make_unique<Table>(std::move(schema)));
  ++catalog_generation_;  // invalidates the layout-fingerprint memo
  return *it->second;
}

bool Database::drop_table(std::string_view name) {
  const bool dropped = tables_.erase(std::string(name)) > 0;
  if (dropped) ++catalog_generation_;
  return dropped;
}

Table* Database::find_table(std::string_view name) {
  const auto it = tables_.find(std::string(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::find_table(std::string_view name) const {
  const auto it = tables_.find(std::string(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Table& Database::table(std::string_view name) {
  Table* t = find_table(name);
  if (t == nullptr) throw EvalError(support::cat("unknown table '", name, "'"));
  return *t;
}

const Table& Database::table(std::string_view name) const {
  const Table* t = find_table(name);
  if (t == nullptr) throw EvalError(support::cat("unknown table '", name, "'"));
  return *t;
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

namespace {

Database::TableLayout layout_of(const Table& table) {
  Database::TableLayout layout;
  layout.table = table.schema().name();
  layout.partition = table.schema().partition();
  layout.partitions = table.partition_count();
  if (layout.partition) layout.partition_column = layout.partition->column;
  return layout;
}

void hash_mix(std::uint64_t& h, std::string_view text) {
  // FNV-1a over the lowercased text (the catalog is case-insensitive, so
  // two spellings of one layout must fingerprint identically).
  for (const char c : text) {
    h ^= static_cast<std::uint64_t>(
        std::tolower(static_cast<unsigned char>(c)));
    h *= 0x100000001b3ULL;
  }
  h ^= 0x1f;
  h *= 0x100000001b3ULL;
}

}  // namespace

std::optional<Database::TableLayout> Database::table_layout(
    std::string_view name) const {
  const Table* table = find_table(name);
  if (table == nullptr) return std::nullopt;
  return layout_of(*table);
}

std::vector<Database::TableLayout> Database::table_layouts() const {
  std::vector<TableLayout> layouts;
  layouts.reserve(tables_.size());
  for (const auto& [name, table] : tables_) layouts.push_back(layout_of(*table));
  return layouts;
}

std::uint64_t Database::layout_fingerprint() const {
  if (layout_memo_.generation.load(std::memory_order_acquire) ==
      catalog_generation_) {
    return layout_memo_.fingerprint.load(std::memory_order_relaxed);
  }
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const auto& [name, table] : tables_) {
    hash_mix(h, table->schema().name());
    const auto& spec = table->schema().partition();
    if (!spec) {
      hash_mix(h, "-");
      continue;
    }
    hash_mix(h, spec->method == PartitionSpec::Method::kHash ? "hash" : "range");
    hash_mix(h, spec->column);
    hash_mix(h, std::to_string(spec->partitions));
    for (const Value& bound : spec->range_bounds) {
      hash_mix(h, bound.to_display());
    }
  }
  layout_memo_.fingerprint.store(h, std::memory_order_relaxed);
  layout_memo_.generation.store(catalog_generation_, std::memory_order_release);
  return h;
}

QueryResult Database::execute(std::string_view sql_text,
                              std::span<const Value> params) {
  std::vector<sql::Statement> stmts = sql::parse_sql(sql_text);
  if (stmts.empty()) return {};
  QueryResult result;
  for (sql::Statement& stmt : stmts) {
    result = execute(stmt, params);
  }
  return result;
}

QueryResult Database::execute(sql::Statement& stmt, std::span<const Value> params) {
  return std::visit(
      [&](auto& s) -> QueryResult {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, sql::SelectStmt>) {
          return SelectExec(*this, s, params).run();
        } else if constexpr (std::is_same_v<T, sql::CreateTableStmt>) {
          return exec_create_table(*this, s);
        } else if constexpr (std::is_same_v<T, sql::CreateIndexStmt>) {
          return exec_create_index(*this, s);
        } else if constexpr (std::is_same_v<T, sql::InsertStmt>) {
          return exec_insert(*this, s, params);
        } else if constexpr (std::is_same_v<T, sql::UpdateStmt>) {
          return exec_update(*this, s, params);
        } else if constexpr (std::is_same_v<T, sql::DeleteStmt>) {
          return exec_delete(*this, s, params);
        } else {
          return exec_drop(*this, s);
        }
      },
      stmt);
}

PreparedStatement Database::prepare(std::string_view sql_text) const {
  return PreparedStatement(sql::parse_single(sql_text));
}

QueryResult Database::execute(PreparedStatement& stmt,
                              std::span<const Value> params) {
  return execute(stmt.ast(), params);
}

QueryResult Database::execute_select_with(sql::SelectStmt& stmt,
                                          std::span<const Value> params,
                                          std::span<const InjectedCte> injected) {
  CteScope pre;
  pre.entries.reserve(injected.size());
  for (const InjectedCte& cte : injected) {
    pre.entries.emplace_back(std::string(cte.name), cte.rows);
  }
  return SelectExec(*this, stmt, params, nullptr, nullptr, &pre).run();
}

namespace {

/// Highest `?` marker index in the statement (recursively), so explain can
/// size an all-NULL parameter vector that satisfies the binder.
void max_param_count(const sql::SelectStmt& stmt, std::size_t& n);

void max_param_count(const sql::Expr* e, std::size_t& n) {
  if (e == nullptr) return;
  if (e->kind == sql::Expr::Kind::kParam) n = std::max(n, e->param_index + 1);
  max_param_count(e->lhs.get(), n);
  max_param_count(e->rhs.get(), n);
  for (const auto& arg : e->args) max_param_count(arg.get(), n);
  if (e->subquery) max_param_count(*e->subquery, n);
}

void max_param_count(const sql::SelectStmt& stmt, std::size_t& n) {
  for (const auto& cte : stmt.ctes) max_param_count(*cte.select, n);
  for (const auto& item : stmt.items) max_param_count(item.expr.get(), n);
  max_param_count(stmt.where.get(), n);
  for (const auto& join : stmt.joins) max_param_count(join.on.get(), n);
  for (const auto& g : stmt.group_by) max_param_count(g.get(), n);
  max_param_count(stmt.having.get(), n);
  for (const auto& key : stmt.order_by) max_param_count(key.expr.get(), n);
}

/// One SELECT's analysis-only verdict. Binds a throwaway clone (binding
/// mutates the tree: star expansion, alias rewrites) with all-NULL
/// parameters; bind failures — including FROM naming a CTE, which explain
/// never materializes — report as row path with the diagnostic.
std::string fused_verdict(Database& db, const sql::SelectStmt& stmt,
                          std::span<const Value> params) {
  const std::unique_ptr<sql::SelectStmt> copy = stmt.clone();
  try {
    return SelectExec(db, *copy, params).explain_verdict();
  } catch (const EvalError& e) {
    return support::cat("row path (", e.what(), ")");
  }
}

}  // namespace

std::vector<Database::FusedExplain> Database::explain_fused(
    std::string_view sql_text) {
  std::vector<FusedExplain> out;
  std::vector<sql::Statement> stmts = sql::parse_sql(sql_text);
  for (std::size_t s = 0; s < stmts.size(); ++s) {
    const std::string prefix =
        stmts.size() > 1 ? support::cat("stmt", s + 1, " ") : std::string();
    const auto* select = std::get_if<sql::SelectStmt>(&stmts[s]);
    if (select == nullptr) {
      out.push_back({support::cat(prefix, "main"), "not a SELECT"});
      continue;
    }
    std::size_t nparams = 0;
    max_param_count(*select, nparams);
    const std::vector<Value> params(nparams);  // default Value is NULL
    for (const auto& cte : select->ctes) {
      out.push_back({support::cat(prefix, cte.name),
                     fused_verdict(*this, *cte.select, params)});
    }
    out.push_back(
        {support::cat(prefix, "main"), fused_verdict(*this, *select, params)});
  }
  return out;
}

std::size_t Database::total_rows() const {
  std::size_t total = 0;
  for (const auto& [name, table] : tables_) total += table->live_row_count();
  return total;
}

}  // namespace kojak::db
