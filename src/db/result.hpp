#ifndef KOJAK_DB_RESULT_HPP
#define KOJAK_DB_RESULT_HPP

#include <string>
#include <vector>

#include "db/value.hpp"
#include "support/error.hpp"

namespace kojak::db {

/// Materialized result of a statement. DML statements report affected_rows
/// and leave columns/rows empty.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  std::size_t affected_rows = 0;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept { return columns.size(); }

  [[nodiscard]] const Value& at(std::size_t row, std::size_t col) const {
    return rows.at(row).at(col);
  }

  /// The single value of a 1x1 result; throws otherwise. An empty result
  /// yields NULL (SQL scalar-subquery convention).
  [[nodiscard]] Value scalar() const {
    if (rows.empty()) return Value::null();
    if (rows.size() != 1 || columns.size() != 1) {
      throw support::EvalError("result is not scalar");
    }
    return rows[0][0];
  }

  /// Column position by (case-insensitive) name; throws when absent.
  [[nodiscard]] std::size_t column_index(std::string_view name) const;

  /// Renders as an aligned table (testing/debug aid).
  [[nodiscard]] std::string to_table() const;
};

}  // namespace kojak::db

#endif  // KOJAK_DB_RESULT_HPP
