#include "db/connection_pool.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace kojak::db {

ConnectionPool::ConnectionPool(Database& db, ConnectionProfile profile,
                               std::size_t capacity, DriverKind driver)
    : db_(db),
      profile_(std::move(profile)),
      driver_(driver),
      capacity_(std::max<std::size_t>(1, capacity)) {}

ConnectionPool::Lease::Lease(Lease&& other) noexcept
    : pool_(other.pool_), conn_(other.conn_) {
  other.pool_ = nullptr;
  other.conn_ = nullptr;
}

ConnectionPool::Lease& ConnectionPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = other.pool_;
    conn_ = other.conn_;
    other.pool_ = nullptr;
    other.conn_ = nullptr;
  }
  return *this;
}

ConnectionPool::Lease::~Lease() { release(); }

void ConnectionPool::Lease::release() {
  if (pool_ != nullptr && conn_ != nullptr) pool_->give_back(conn_);
  pool_ = nullptr;
  conn_ = nullptr;
}

ConnectionPool::Lease ConnectionPool::acquire() {
  std::unique_lock lock(mutex_);
  ++stats_.acquires;
  if (idle_.empty() && connections_.size() < capacity_) {
    connections_.push_back(std::make_unique<Connection>(db_, profile_, driver_));
    return Lease(this, connections_.back().get());
  }
  if (idle_.empty()) {
    ++stats_.waits;
    cv_.wait(lock, [this] { return !idle_.empty(); });
  }
  ++stats_.reuses;
  Connection* conn = idle_.back();
  idle_.pop_back();
  return Lease(this, conn);
}

std::optional<ConnectionPool::Lease> ConnectionPool::try_acquire() {
  std::lock_guard lock(mutex_);
  if (idle_.empty() && connections_.size() < capacity_) {
    ++stats_.acquires;
    connections_.push_back(std::make_unique<Connection>(db_, profile_, driver_));
    return Lease(this, connections_.back().get());
  }
  if (idle_.empty()) return std::nullopt;
  ++stats_.acquires;
  ++stats_.reuses;
  Connection* conn = idle_.back();
  idle_.pop_back();
  return Lease(this, conn);
}

void ConnectionPool::give_back(Connection* conn) {
  {
    std::lock_guard lock(mutex_);
    idle_.push_back(conn);
  }
  cv_.notify_one();
}

std::size_t ConnectionPool::created() const {
  std::lock_guard lock(mutex_);
  return connections_.size();
}

std::size_t ConnectionPool::idle() const {
  std::lock_guard lock(mutex_);
  return idle_.size();
}

ConnectionPool::Stats ConnectionPool::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

double ConnectionPool::total_clock_us() const {
  std::lock_guard lock(mutex_);
  double total = 0;
  for (const auto& conn : connections_) total += conn->clock().now_us();
  return total;
}

double ConnectionPool::max_clock_us() const {
  std::lock_guard lock(mutex_);
  double best = 0;
  for (const auto& conn : connections_) {
    best = std::max(best, conn->clock().now_us());
  }
  return best;
}

std::vector<double> ConnectionPool::clock_snapshot_us() const {
  std::lock_guard lock(mutex_);
  std::vector<double> out;
  out.reserve(connections_.size());
  for (const auto& conn : connections_) out.push_back(conn->clock().now_us());
  return out;
}

std::uint64_t ConnectionPool::statements_executed() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& conn : connections_) total += conn->statements_executed();
  return total;
}

}  // namespace kojak::db
