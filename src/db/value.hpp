#ifndef KOJAK_DB_VALUE_HPP
#define KOJAK_DB_VALUE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace kojak::db {

/// Column/value types of the relational engine. kDateTime is an int64 count
/// of seconds since the Unix epoch with its own type tag so schema
/// generation from ASL `DateTime` attributes stays faithful.
enum class ValueType : std::uint8_t {
  kNull,
  kBool,
  kInt,
  kDouble,
  kString,
  kDateTime,
};

[[nodiscard]] std::string_view to_string(ValueType type);
/// Parses a SQL type name (INTEGER, BIGINT, REAL, DOUBLE, FLOAT, TEXT,
/// VARCHAR, BOOLEAN, DATETIME, TIMESTAMP); returns nullopt when unknown.
[[nodiscard]] std::optional<ValueType> parse_type_name(std::string_view name);

/// A single SQL value. Small immutable sum type with checked accessors.
class Value {
 public:
  Value() = default;  // NULL

  [[nodiscard]] static Value null() { return Value(); }
  [[nodiscard]] static Value boolean(bool v) { return Value(Payload(v)); }
  [[nodiscard]] static Value integer(std::int64_t v) { return Value(Payload(v)); }
  [[nodiscard]] static Value real(double v) { return Value(Payload(v)); }
  [[nodiscard]] static Value text(std::string v) { return Value(Payload(std::move(v))); }
  [[nodiscard]] static Value datetime(std::int64_t epoch_seconds) {
    Value v{Payload(epoch_seconds)};
    v.is_datetime_ = true;
    return v;
  }

  [[nodiscard]] ValueType type() const noexcept;
  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::monostate>(payload_);
  }
  [[nodiscard]] bool is_numeric() const noexcept {
    const ValueType t = type();
    return t == ValueType::kInt || t == ValueType::kDouble;
  }

  /// Checked accessors; throw support::EvalError on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;  // accepts kInt and kDouble
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] std::int64_t as_datetime() const;

  /// SQL comparison: NULL compares as unknown (nullopt); numeric types
  /// compare by value across int/double; cross-type otherwise is an error.
  [[nodiscard]] static std::optional<int> compare_sql(const Value& a, const Value& b);

  /// Total order for ORDER BY and group keys: NULL sorts first, then by
  /// type class, then by value. Never throws.
  [[nodiscard]] static int compare_total(const Value& a, const Value& b) noexcept;

  /// Equality under the total order (used for group/index keys).
  [[nodiscard]] bool equals_total(const Value& other) const noexcept {
    return compare_total(*this, other) == 0;
  }

  [[nodiscard]] std::size_t hash() const noexcept;

  /// Human-readable rendering (NULL, true/false, numbers, raw text,
  /// `YYYY-MM-DD hh:mm:ss` for datetimes).
  [[nodiscard]] std::string to_display() const;
  /// SQL literal rendering that re-parses to an equal value.
  [[nodiscard]] std::string to_sql_literal() const;

  /// Coerces this value for storage into a column of `target` type.
  /// Allowed: exact match, int->double, int<->datetime, NULL anywhere.
  /// Throws support::EvalError otherwise.
  [[nodiscard]] Value coerce_to(ValueType target) const;

 private:
  using Payload = std::variant<std::monostate, bool, std::int64_t, double, std::string>;
  explicit Value(Payload payload) : payload_(std::move(payload)) {}

  Payload payload_;
  bool is_datetime_ = false;
};

using Row = std::vector<Value>;

struct ValueHash {
  std::size_t operator()(const Value& v) const noexcept { return v.hash(); }
};
struct ValueEqTotal {
  bool operator()(const Value& a, const Value& b) const noexcept {
    return a.equals_total(b);
  }
};

/// Numeric arithmetic with int/double promotion. `op` is one of + - * / %.
/// Division by zero and type errors throw support::EvalError. NULL operands
/// yield NULL.
[[nodiscard]] Value numeric_binop(char op, const Value& a, const Value& b);

/// Formats seconds-since-epoch as `YYYY-MM-DD hh:mm:ss` (UTC).
[[nodiscard]] std::string format_datetime(std::int64_t epoch_seconds);
/// Parses `YYYY-MM-DD hh:mm:ss` or `YYYY-MM-DD`; nullopt when malformed.
[[nodiscard]] std::optional<std::int64_t> parse_datetime(std::string_view text);

}  // namespace kojak::db

#endif  // KOJAK_DB_VALUE_HPP
