#ifndef KOJAK_DB_SCHEMA_HPP
#define KOJAK_DB_SCHEMA_HPP

#include <optional>
#include <string>
#include <vector>

#include "db/value.hpp"

namespace kojak::db {

/// One column of a table schema.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kString;
  bool nullable = true;
  bool primary_key = false;
};

/// Schema of one table. Column names are case-insensitive for lookup but
/// preserve their declared spelling for display.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<ColumnDef>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] std::size_t column_count() const noexcept { return columns_.size(); }
  [[nodiscard]] const ColumnDef& column(std::size_t i) const { return columns_.at(i); }

  /// Case-insensitive column lookup; nullopt when absent.
  [[nodiscard]] std::optional<std::size_t> find_column(std::string_view name) const;

  /// Index of the primary-key column, if declared.
  [[nodiscard]] std::optional<std::size_t> primary_key() const;

  /// `CREATE TABLE` DDL that re-creates this schema.
  [[nodiscard]] std::string to_ddl() const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
};

}  // namespace kojak::db

#endif  // KOJAK_DB_SCHEMA_HPP
