#ifndef KOJAK_DB_SCHEMA_HPP
#define KOJAK_DB_SCHEMA_HPP

#include <optional>
#include <string>
#include <vector>

#include "db/value.hpp"

namespace kojak::db {

/// One column of a table schema.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kString;
  bool nullable = true;
  bool primary_key = false;
};

/// How a table's rows are distributed across partitions. Declared via
/// `CREATE TABLE ... PARTITION BY HASH(col) PARTITIONS n` or
/// `... PARTITION BY RANGE(col) VALUES (b1, b2, ...)`; each partition owns
/// its own row heap, tombstone bitmap, and index shards (see db/table.hpp).
struct PartitionSpec {
  enum class Method : std::uint8_t { kHash, kRange };

  Method method = Method::kHash;
  std::string column;
  /// Hash: declared partition count. Range: range_bounds.size() + 1.
  std::size_t partitions = 1;
  /// Range method only: strictly ascending inclusive upper bounds. A value
  /// v routes to the first partition whose bound satisfies v <= bound;
  /// values above every bound land in the final overflow partition.
  std::vector<Value> range_bounds;
};

/// Deterministic value -> partition routing derived from a PartitionSpec.
/// Shared by the table heap and its index shards (both must agree on where
/// a key lives). NULLs always route to partition 0.
class PartitionRouter {
 public:
  PartitionRouter() = default;  // single partition: everything routes to 0

  explicit PartitionRouter(const PartitionSpec& spec)
      : method_(spec.method),
        partitions_(spec.partitions == 0 ? 1 : spec.partitions),
        bounds_(spec.range_bounds) {}

  [[nodiscard]] std::size_t partitions() const noexcept { return partitions_; }

  [[nodiscard]] std::size_t route(const Value& v) const noexcept {
    if (partitions_ <= 1 || v.is_null()) return 0;
    if (method_ == PartitionSpec::Method::kHash) {
      return v.hash() % partitions_;
    }
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      if (Value::compare_total(v, bounds_[i]) <= 0) return i;
    }
    return partitions_ - 1;
  }

 private:
  PartitionSpec::Method method_ = PartitionSpec::Method::kHash;
  std::size_t partitions_ = 1;
  std::vector<Value> bounds_;
};

/// Physical layout of a table's partitions. `kRow` is the classic heap of
/// `Row` vectors; `kColumnar` additionally maintains one typed vector per
/// column plus a validity bitmap per partition (the row heap stays the
/// source of truth for point lookups, so row ids and the `row(id)` contract
/// are identical in both modes). Declared via
/// `CREATE TABLE ... STORAGE COLUMNAR`; the executor's vectorized
/// aggregate kernels only fire on columnar tables.
enum class StorageMode : std::uint8_t { kRow, kColumnar };

/// Schema of one table. Column names are case-insensitive for lookup but
/// preserve their declared spelling for display.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<ColumnDef>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] std::size_t column_count() const noexcept { return columns_.size(); }
  [[nodiscard]] const ColumnDef& column(std::size_t i) const { return columns_.at(i); }

  /// Case-insensitive column lookup; nullopt when absent.
  [[nodiscard]] std::optional<std::size_t> find_column(std::string_view name) const;

  /// Index of the primary-key column, if declared.
  [[nodiscard]] std::optional<std::size_t> primary_key() const;

  /// Declares the partition layout. Validates the column exists, the
  /// partition count is within [1, kMaxTablePartitions], and range bounds
  /// are non-null and strictly ascending; throws support::EvalError
  /// otherwise.
  void set_partition(PartitionSpec spec);
  [[nodiscard]] const std::optional<PartitionSpec>& partition() const noexcept {
    return partition_;
  }

  /// Declares the physical storage layout (row heap vs columnar).
  void set_storage(StorageMode mode) noexcept { storage_ = mode; }
  [[nodiscard]] StorageMode storage() const noexcept { return storage_; }

  /// `CREATE TABLE` DDL that re-creates this schema (including the
  /// PARTITION BY and STORAGE clauses when declared).
  [[nodiscard]] std::string to_ddl() const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
  std::optional<PartitionSpec> partition_;
  StorageMode storage_ = StorageMode::kRow;
};

/// Hard cap on declared partitions; row ids reserve this many high bits
/// (see db/table.hpp row-id encoding).
inline constexpr std::size_t kMaxTablePartitions = 1024;

}  // namespace kojak::db

#endif  // KOJAK_DB_SCHEMA_HPP
