#include "db/connection.hpp"

#include <cstdlib>

#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::db {

// --- profile calibration (documented in EXPERIMENTS.md, experiment T1/T2) --
//
// Anchor: the paper reports MS Access insertion "a factor of 20 faster" than
// the Oracle 7 server, Oracle "a factor of 2 slower" than MS SQL Server and
// Postgres, and ~1 ms to fetch a record from Oracle via JDBC. We set the
// Access in-process insert to 50 us/row and derive the rest; the slight
// MSSQL/Postgres asymmetry keeps the two distinguishable without changing
// the paper's ordering.

ConnectionProfile ConnectionProfile::access_local() {
  return {.name = "MS Access (local)",
          .distributed = false,
          .connect_us = 2'000,
          .stmt_roundtrip_us = 0,
          .insert_row_us = 50,
          .fetch_row_us = 40,
          .value_wire_us = 0.4};
}

ConnectionProfile ConnectionProfile::oracle7() {
  return {.name = "Oracle 7 (distributed)",
          .distributed = true,
          .connect_us = 120'000,
          .stmt_roundtrip_us = 350,
          .insert_row_us = 650,
          .fetch_row_us = 150,
          .value_wire_us = 2.5};
}

ConnectionProfile ConnectionProfile::mssql_server() {
  return {.name = "MS SQL Server (distributed)",
          .distributed = true,
          .connect_us = 60'000,
          .stmt_roundtrip_us = 350,
          .insert_row_us = 145,
          .fetch_row_us = 130,
          .value_wire_us = 2.0};
}

ConnectionProfile ConnectionProfile::postgres() {
  return {.name = "Postgres (distributed)",
          .distributed = true,
          .connect_us = 45'000,
          .stmt_roundtrip_us = 360,
          .insert_row_us = 160,
          .fetch_row_us = 140,
          .value_wire_us = 2.1};
}

ConnectionProfile ConnectionProfile::in_memory() {
  return {.name = "in-memory (no model)",
          .distributed = false,
          .connect_us = 0,
          .stmt_roundtrip_us = 0,
          .insert_row_us = 0,
          .fetch_row_us = 0,
          .value_wire_us = 0};
}

std::vector<ConnectionProfile> ConnectionProfile::all_paper_profiles() {
  return {access_local(), oracle7(), mssql_server(), postgres()};
}

std::string_view to_string(DriverKind kind) {
  return kind == DriverKind::kNative ? "native" : "bridge (JDBC-style)";
}

Connection::Connection(Database& db, ConnectionProfile profile, DriverKind driver)
    : db_(db), profile_(std::move(profile)), driver_(driver) {
  clock_.advance_us(profile_.connect_us);
}

namespace {

/// Multiplier for the modelled per-row/value cost under the bridge driver:
/// the 2-4x JDBC penalty of §5 comes from crossing the driver boundary with
/// text marshalling; 3.6 keeps every backend inside the paper's band.
constexpr double kBridgeCostFactor = 3.6;
/// Fixed per-row dispatch overhead of the bridge (us, virtual).
constexpr double kBridgeRowDispatchUs = 8.0;
/// JDBC-era drivers add protocol exchanges per statement (metadata fetch,
/// cursor bookkeeping): modelled as 50% extra round-trip cost.
constexpr double kBridgeRttFactor = 1.5;

}  // namespace

void Connection::charge_statement(const QueryResult& result,
                                  std::size_t bound_values) {
  if (profile_.distributed) {
    clock_.advance_us(profile_.stmt_roundtrip_us *
                      (driver_ == DriverKind::kBridge ? kBridgeRttFactor : 1.0));
  }

  const double driver_factor =
      driver_ == DriverKind::kBridge ? kBridgeCostFactor : 1.0;

  if (result.affected_rows > 0) {
    clock_.advance_us(profile_.insert_row_us *
                      static_cast<double>(result.affected_rows));
  }
  if (bound_values > 0) {
    // Every bound value crosses the wire client->server, for queries as
    // much as for DML: a prepared SELECT with 8 `?` parameters ships 8
    // values per execution. (The whole-condition CSE pass cuts exactly
    // this term — deduplicated subexpressions bind each argument once.)
    clock_.advance_us(profile_.value_wire_us * driver_factor *
                      static_cast<double>(bound_values));
  }
  if (!result.rows.empty()) {
    // The bridge penalty is per fetched row and value: each crosses the
    // driver boundary through text marshalling (JDBC's row-at-a-time path).
    const auto n_rows = static_cast<double>(result.rows.size());
    const auto n_values = n_rows * static_cast<double>(result.column_count());
    clock_.advance_us(profile_.fetch_row_us * driver_factor * n_rows);
    clock_.advance_us(profile_.value_wire_us * driver_factor * n_values);
    if (driver_ == DriverKind::kBridge) {
      clock_.advance_us(kBridgeRowDispatchUs * n_rows);
    }
  }
  rows_ += result.rows.size() + result.affected_rows;
  ++statements_;
}

QueryResult Connection::finish(QueryResult result, std::size_t bound_values) {
  charge_statement(result, bound_values);
  if (driver_ == DriverKind::kBridge && !result.rows.empty()) {
    result = bridge_marshal_roundtrip(result);
  }
  return result;
}

QueryResult Connection::execute(std::string_view sql_text,
                                std::span<const Value> params) {
  QueryResult result = db_.execute(sql_text, params);
  // Wire charge for client->server values: bound `?` parameters when the
  // statement has any, else the rough per-row estimate for DML whose
  // values are inlined in the text.
  const std::size_t bound_values =
      params.empty() ? result.affected_rows * 8 : params.size();
  return finish(std::move(result), bound_values);
}

QueryResult Connection::execute(PreparedStatement& stmt,
                                std::span<const Value> params) {
  QueryResult result = db_.execute(stmt, params);
  return finish(std::move(result), params.size());
}

QueryResult Connection::execute_with_ctes(
    sql::SelectStmt& stmt, std::span<const Value> params,
    std::span<const Database::InjectedCte> injected) {
  QueryResult result = db_.execute_select_with(stmt, params, injected);
  return finish(std::move(result), params.size());
}

QueryResult bridge_marshal_roundtrip(const QueryResult& result) {
  // Wire format: one type tag byte + display text per value, '\x1f' separated.
  std::string wire;
  wire.reserve(result.rows.size() * result.column_count() * 12);
  for (const Row& row : result.rows) {
    for (const Value& v : row) {
      switch (v.type()) {
        case ValueType::kNull: wire += 'N'; break;
        case ValueType::kBool: wire += 'B'; break;
        case ValueType::kInt: wire += 'I'; break;
        case ValueType::kDouble: wire += 'D'; break;
        case ValueType::kString: wire += 'S'; break;
        case ValueType::kDateTime: wire += 'T'; break;
      }
      if (v.type() == ValueType::kDateTime) {
        wire += std::to_string(v.as_datetime());
      } else if (v.type() != ValueType::kNull) {
        wire += v.to_display();
      }
      wire += '\x1f';
    }
  }

  QueryResult out;
  out.columns = result.columns;
  out.affected_rows = result.affected_rows;
  out.rows.reserve(result.rows.size());
  const std::size_t cols = result.column_count();
  std::size_t pos = 0;
  for (std::size_t r = 0; r < result.rows.size(); ++r) {
    Row row;
    row.reserve(cols);
    for (std::size_t c = 0; c < cols; ++c) {
      const char tag = wire[pos++];
      const std::size_t end = wire.find('\x1f', pos);
      const std::string_view text(wire.data() + pos, end - pos);
      pos = end + 1;
      switch (tag) {
        case 'N': row.push_back(Value::null()); break;
        case 'B': row.push_back(Value::boolean(text == "true")); break;
        case 'I':
          row.push_back(Value::integer(std::strtoll(text.data(), nullptr, 10)));
          break;
        case 'D': {
          row.push_back(Value::real(std::strtod(std::string(text).c_str(), nullptr)));
          break;
        }
        case 'S': row.push_back(Value::text(std::string(text))); break;
        case 'T':
          row.push_back(Value::datetime(std::strtoll(text.data(), nullptr, 10)));
          break;
        default:
          throw support::EvalError("bridge wire corruption");
      }
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

}  // namespace kojak::db
