#include "db/distributed.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <optional>
#include <thread>
#include <variant>

#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::db {

// ---------------------------------------------------------------------------
// Shard rendering: SELECT -> SQL text with `?` in text order.
//
// A remote worker receives the shard as serialized statement text, so the
// body must survive a parse round trip. Placeholders are emitted as `?` and
// the original (absolute) param_index of each is recorded in emission
// order — a re-parse numbers placeholders sequentially in exactly that
// order, so slicing the statement's bound values by the recorded indices
// yields the shard's wire parameters.

namespace {

bool render_select(const sql::SelectStmt& s, std::string& out,
                   std::vector<std::size_t>& params);

bool render_literal(const Value& v, std::string& out) {
  switch (v.type()) {
    case ValueType::kNull:
      out += "NULL";
      return true;
    case ValueType::kBool:
      out += v.as_bool() ? "TRUE" : "FALSE";
      return true;
    case ValueType::kInt:
      out += std::to_string(v.as_int());
      return true;
    case ValueType::kDouble: {
      const double d = v.as_double();
      if (!std::isfinite(d)) return false;
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      out += buf;
      // Force a float re-parse: "0" alone would come back as an integer
      // literal and change arithmetic typing downstream.
      if (std::string_view(buf).find_first_of(".eE") ==
          std::string_view::npos) {
        out += ".0";
      }
      return true;
    }
    case ValueType::kString:
      out += '\'';
      for (const char c : v.as_string()) {
        out += c;
        if (c == '\'') out += '\'';
      }
      out += '\'';
      return true;
    case ValueType::kDateTime:
      out += support::cat("DATETIME '", format_datetime(v.as_datetime()), "'");
      return true;
  }
  return false;
}

bool render_expr(const sql::Expr& e, std::string& out,
                 std::vector<std::size_t>& params) {
  using Kind = sql::Expr::Kind;
  switch (e.kind) {
    case Kind::kLiteral:
      return render_literal(e.literal, out);
    case Kind::kColumnRef:
      if (!e.table.empty()) out += support::cat(e.table, ".");
      out += e.column;
      return true;
    case Kind::kParam:
      out += '?';
      params.push_back(e.param_index);
      return true;
    case Kind::kUnary:
      out += '(';
      out += e.un_op == sql::UnOp::kNeg ? "-" : "NOT ";
      if (e.lhs == nullptr || !render_expr(*e.lhs, out, params)) return false;
      out += ')';
      return true;
    case Kind::kBinary:
      out += '(';
      if (e.lhs == nullptr || !render_expr(*e.lhs, out, params)) return false;
      out += support::cat(" ", sql::to_string(e.bin_op), " ");
      if (e.rhs == nullptr || !render_expr(*e.rhs, out, params)) return false;
      out += ')';
      return true;
    case Kind::kFuncCall:
      out += e.func;
      out += '(';
      if (e.star_arg) {
        out += "*)";
        return true;
      }
      if (e.distinct_arg) out += "DISTINCT ";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        if (!render_expr(*e.args[i], out, params)) return false;
      }
      out += ')';
      return true;
    case Kind::kIsNull:
      out += '(';
      if (e.lhs == nullptr || !render_expr(*e.lhs, out, params)) return false;
      out += e.negated ? " IS NOT NULL)" : " IS NULL)";
      return true;
    case Kind::kInList:
      out += '(';
      if (e.lhs == nullptr || !render_expr(*e.lhs, out, params)) return false;
      out += e.negated ? " NOT IN (" : " IN (";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        if (!render_expr(*e.args[i], out, params)) return false;
      }
      out += "))";
      return true;
    case Kind::kLike:
      out += '(';
      if (e.lhs == nullptr || !render_expr(*e.lhs, out, params)) return false;
      out += e.negated ? " NOT LIKE " : " LIKE ";
      if (e.rhs == nullptr || !render_expr(*e.rhs, out, params)) return false;
      out += ')';
      return true;
    case Kind::kSubquery:
      if (e.subquery == nullptr) return false;
      out += '(';
      if (!render_select(*e.subquery, out, params)) return false;
      out += ')';
      return true;
    case Kind::kAliasRef:
      return false;  // no textual spelling survives parsing
  }
  return false;
}

void render_table_ref(const sql::TableRef& ref, std::string& out) {
  out += ref.table;
  if (ref.partition) out += support::cat(" PARTITION (", *ref.partition, ")");
  if (!ref.alias.empty()) out += support::cat(" ", ref.alias);
}

bool render_select(const sql::SelectStmt& s, std::string& out,
                   std::vector<std::size_t>& params) {
  if (!s.ctes.empty()) return false;  // shard bodies are CTE-free
  out += "SELECT ";
  if (s.distinct) out += "DISTINCT ";
  for (std::size_t i = 0; i < s.items.size(); ++i) {
    if (i > 0) out += ", ";
    const sql::SelectItem& item = s.items[i];
    if (item.star) {
      if (!item.star_table.empty()) out += support::cat(item.star_table, ".");
      out += '*';
      continue;
    }
    if (item.expr == nullptr || !render_expr(*item.expr, out, params)) {
      return false;
    }
    if (!item.alias.empty()) out += support::cat(" AS ", item.alias);
  }
  if (s.from) {
    out += " FROM ";
    render_table_ref(*s.from, out);
  }
  for (const sql::Join& join : s.joins) {
    if (join.on == nullptr) {
      out += " CROSS JOIN ";
      render_table_ref(join.table, out);
      continue;
    }
    out += " JOIN ";
    render_table_ref(join.table, out);
    out += " ON ";
    if (!render_expr(*join.on, out, params)) return false;
  }
  if (s.where) {
    out += " WHERE ";
    if (!render_expr(*s.where, out, params)) return false;
  }
  for (std::size_t i = 0; i < s.group_by.size(); ++i) {
    out += i == 0 ? " GROUP BY " : ", ";
    if (!render_expr(*s.group_by[i], out, params)) return false;
  }
  if (s.having) {
    out += " HAVING ";
    if (!render_expr(*s.having, out, params)) return false;
  }
  for (std::size_t i = 0; i < s.order_by.size(); ++i) {
    out += i == 0 ? " ORDER BY " : ", ";
    if (!render_expr(*s.order_by[i].expr, out, params)) return false;
    if (s.order_by[i].descending) out += " DESC";
  }
  if (s.limit) out += support::cat(" LIMIT ", *s.limit);
  if (s.offset) out += support::cat(" OFFSET ", *s.offset);
  return true;
}

/// Modelled characters of serialized statement text per wire value — the
/// CTE body ships as text and is charged through the profile's per-value
/// wire cost at this granularity.
constexpr double kWireCharsPerValue = 8.0;

}  // namespace

bool render_select_sql(const sql::SelectStmt& stmt, std::string& out,
                       std::vector<std::size_t>& param_order) {
  std::string text;
  std::vector<std::size_t> order;
  if (!render_select(stmt, text, order)) return false;
  out = std::move(text);
  param_order = std::move(order);
  return true;
}

// ---------------------------------------------------------------------------
// Workers

void Worker::set_faults(Faults faults) {
  std::lock_guard lock(faults_mutex_);
  faults_ = faults;
}

QueryResult Worker::execute_shard(const ShardTask& task) {
  bool fail = false;
  std::chrono::milliseconds delay{0};
  {
    std::lock_guard lock(faults_mutex_);
    delay = faults_.delay;
    if (faults_.fail_first > 0) {
      --faults_.fail_first;
      fail = true;
    }
  }
  // Thread confinement: the replica sees one statement at a time no matter
  // how the coordinator's pool schedules attempts.
  std::lock_guard confine(gate_);
  if (fail) {
    throw support::EvalError(
        support::cat("injected failure on worker '", name_, "'"));
  }
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
  QueryResult result = do_execute_shard(task);
  shards_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

QueryResult InProcessWorker::do_execute_shard(const ShardTask& task) {
  // Attempts of one task can run on several workers at once (straggler
  // re-issue), so each executes its own structural copy — binder
  // annotations never collide across replicas.
  sql::Statement stmt{std::move(*task.body->clone())};
  return replica_.execute(stmt, task.full_params);
}

QueryResult RemoteWorker::do_execute_shard(const ShardTask& task) {
  const std::uint64_t before = conn_.clock().now_ns();
  // The CTE text serializes coordinator -> worker before execution; the
  // result rows and round trip are charged by the connection itself.
  conn_.clock().advance_us(conn_.profile().value_wire_us *
                           (static_cast<double>(task.sql_text.size()) /
                            kWireCharsPerValue));
  QueryResult result = conn_.execute(task.sql_text, task.wire_params);
  charge_ns(conn_.clock().now_ns() - before);
  return result;
}

// ---------------------------------------------------------------------------
// Replicas

namespace {

/// Full clone of one source table into `replica` (schema, indexes, live
/// rows in scan order).
void clone_table(Database& replica, const Table& table) {
  Table& copy = replica.create_table(table.schema());
  for (const auto& index : table.indexes()) {
    copy.create_index(index->name(), index->column(), index->kind());
  }
  // Live rows re-insert in the source's scan order (partition-major,
  // heap order within each); the identical partition spec routes every
  // row to the same partition, so replica scans are byte-for-byte the
  // source's row streams.
  table.for_each_live_row(
      [&copy](std::size_t, const Row& row) { copy.insert(row); });
}

[[nodiscard]] std::vector<std::uint64_t> partition_versions(
    const Table& table) {
  std::vector<std::uint64_t> versions(table.partition_count());
  for (std::size_t p = 0; p < versions.size(); ++p) {
    versions[p] = table.partition_version(p);
  }
  return versions;
}

}  // namespace

ReplicaSet::ReplicaSet(const Database& source, std::size_t count)
    : source_(&source) {
  replicas_.reserve(count);
  SyncedVersions at_clone;
  for (const std::string& name : source.table_names()) {
    at_clone.emplace(name, partition_versions(source.table(name)));
  }
  for (std::size_t r = 0; r < count; ++r) {
    auto replica = std::make_unique<Database>();
    for (const std::string& name : source.table_names()) {
      clone_table(*replica, source.table(name));
    }
    replicas_.push_back(std::move(replica));
    synced_.push_back(at_clone);
  }
}

bool ReplicaSet::replica_stale(std::size_t i) const {
  const SyncedVersions& synced = synced_.at(i);
  for (const std::string& name : source_->table_names()) {
    const Table& table = source_->table(name);
    const auto it = synced.find(name);
    if (it == synced.end() || it->second.size() != table.partition_count()) {
      return true;  // table created or re-partitioned since the sync
    }
    for (std::size_t p = 0; p < it->second.size(); ++p) {
      if (it->second[p] != table.partition_version(p)) return true;
    }
  }
  return false;
}

std::size_t ReplicaSet::refresh(std::size_t i) {
  Database& replica = *replicas_.at(i);
  SyncedVersions& synced = synced_.at(i);
  std::size_t refreshed = 0;
  for (const std::string& name : source_->table_names()) {
    const Table& table = source_->table(name);
    const auto it = synced.find(name);
    if (it == synced.end() || it->second.size() != table.partition_count()) {
      // Table created or re-partitioned since the last sync: replace the
      // replica copy wholesale (rare DDL path; the hot path below is the
      // per-partition one).
      replica.drop_table(name);
      clone_table(replica, table);
      synced[name] = partition_versions(table);
      refreshed += table.partition_count();
      continue;
    }
    std::vector<std::uint64_t>& versions = it->second;
    Table& copy = replica.table(name);
    for (std::size_t p = 0; p < table.partition_count(); ++p) {
      const std::uint64_t current = table.partition_version(p);
      if (versions[p] == current) continue;
      // Re-copy ONLY this partition: tombstone the replica partition's live
      // rows, then append the source partition's rows in scan order — the
      // partition's live-row stream is again byte-for-byte the source's.
      for (const std::size_t row_id : copy.live_rows_in(p)) {
        copy.erase(row_id);
      }
      table.for_each_live_row_in(
          p, [&copy](std::size_t, const Row& row) { copy.insert(row); });
      versions[p] = current;
      ++refreshed;
    }
  }
  return refreshed;
}

std::vector<std::unique_ptr<Worker>> make_workers(
    ReplicaSet& replicas, const ConnectionProfile& profile) {
  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(replicas.size());
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    std::string name = support::cat("worker", i);
    if (profile.distributed) {
      workers.push_back(std::make_unique<RemoteWorker>(
          std::move(name), replicas.replica(i), profile));
    } else {
      workers.push_back(std::make_unique<InProcessWorker>(
          std::move(name), replicas.replica(i)));
    }
  }
  return workers;
}

// ---------------------------------------------------------------------------
// Coordinator

/// Settlement state of one dispatched shard. First result wins: a late
/// (abandoned) attempt takes the mutex, sees `result` already set, and
/// drops its own. `inflight` counts scheduled attempts so gather can tell
/// "all attempts failed" from "an attempt is still running".
struct Coordinator::ShardSlot {
  std::mutex m;
  std::condition_variable cv;
  std::optional<QueryResult> result;
  std::exception_ptr error;
  std::size_t inflight = 0;
  bool reissued = false;
};

Coordinator::Coordinator(Connection& session,
                         std::vector<std::unique_ptr<Worker>> workers,
                         CoordinatorOptions options)
    : session_(&session), options_(options), workers_(std::move(workers)),
      pool_(std::max<std::size_t>(2, workers_.size() * 2)) {}

QueryResult Coordinator::execute(PreparedStatement& stmt,
                                 std::span<const Value> params) {
  if (auto* select = std::get_if<sql::SelectStmt>(&stmt.ast())) {
    std::vector<std::shared_ptr<ShardTask>> tasks =
        plan_shards(*select, params);
    if (!tasks.empty() && replicas_ready_for_scatter()) {
      return scatter_gather(*select, params, std::move(tasks));
    }
  }
  return session_->execute(stmt, params);
}

bool Coordinator::replicas_ready_for_scatter() {
  if (replicas_ == nullptr) return true;  // caller manages worker freshness
  const std::size_t n = std::min(workers_.size(), replicas_->size());
  bool ready = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (!replicas_->replica_stale(i)) continue;
    if (!options_.refresh_stale_replicas) {
      // Decline to scatter: executing on the session is always fresh.
      ready = false;
      continue;
    }
    // Refresh under the worker's execution gate so an abandoned straggler
    // attempt from an earlier statement cannot race the re-copy.
    workers_[i]->with_replica_quiesced([&] {
      const std::size_t refreshed = replicas_->refresh(i);
      session_->database().count_replica_refreshes(refreshed);
    });
  }
  return ready;
}

QueryResult Coordinator::execute(std::string_view sql_text,
                                 std::span<const Value> params) {
  PreparedStatement stmt = session_->database().prepare(sql_text);
  return execute(stmt, params);
}

std::vector<std::shared_ptr<ShardTask>> Coordinator::plan_shards(
    const sql::SelectStmt& stmt, std::span<const Value> params) const {
  std::vector<std::shared_ptr<ShardTask>> tasks;
  if (stmt.ctes.empty() || workers_.empty()) return tasks;
  const Database& db = session_->database();
  for (const sql::CommonTableExpr& cte : stmt.ctes) {
    const sql::SelectStmt& body = *cte.select;
    // A CTE is a shard task iff its body reads only catalog tables (no
    // other CTE names — those materialize coordinator-side) and at least
    // one scan is partition-pinned, i.e. it is a `part<K>` shard of the
    // partition-union rewrite by structure, not by name.
    if (!body.ctes.empty()) continue;
    bool catalog_only = true;
    bool partition_pinned = false;
    sql::for_each_table_ref(body, [&](const sql::TableRef& ref) {
      if (ref.partition) partition_pinned = true;
      bool is_cte = false;
      for (const sql::CommonTableExpr& other : stmt.ctes) {
        if (support::iequals(other.name, ref.table)) {
          is_cte = true;
          break;
        }
      }
      if (is_cte || db.find_table(ref.table) == nullptr) catalog_only = false;
    });
    if (!catalog_only || !partition_pinned) continue;
    std::string text;
    std::vector<std::size_t> order;
    if (!render_select_sql(body, text, order)) continue;
    auto task = std::make_shared<ShardTask>();
    task->cte_name = cte.name;
    task->sql_text = std::move(text);
    task->body = body.clone();
    bool params_ok = true;
    task->wire_params.reserve(order.size());
    for (const std::size_t index : order) {
      if (index >= params.size()) {
        params_ok = false;
        break;
      }
      task->wire_params.push_back(params[index]);
    }
    if (!params_ok) continue;
    task->full_params.assign(params.begin(), params.end());
    tasks.push_back(std::move(task));
  }
  return tasks;
}

void Coordinator::dispatch(Worker& worker, std::shared_ptr<const ShardTask> task,
                           std::shared_ptr<ShardSlot> slot) {
  Database* db = &session_->database();
  const CoordinatorOptions options = options_;
  // The future is dropped deliberately: completion is signalled through the
  // slot (first result wins) and abandoned straggler attempts are allowed
  // to outlive the statement; the pool joins them at destruction.
  (void)pool_.submit([&worker, task = std::move(task), slot = std::move(slot),
                      db, options] {
    for (std::size_t attempt = 1;; ++attempt) {
      try {
        QueryResult result = worker.execute_shard(*task);
        std::lock_guard lock(slot->m);
        if (!slot->result) slot->result = std::move(result);
        --slot->inflight;
        slot->cv.notify_all();
        return;
      } catch (...) {
        db->count_worker_failure();
        if (attempt >= options.max_attempts) {
          std::lock_guard lock(slot->m);
          if (!slot->error) slot->error = std::current_exception();
          --slot->inflight;
          slot->cv.notify_all();
          return;
        }
        db->count_shard_retry();
      }
      std::this_thread::sleep_for(options.retry_backoff);
      {
        // Another attempt (straggler re-issue) may have settled the shard
        // while this one backed off; don't burn the worker again.
        std::lock_guard lock(slot->m);
        if (slot->result) {
          --slot->inflight;
          slot->cv.notify_all();
          return;
        }
      }
    }
  });
}

QueryResult Coordinator::scatter_gather(
    sql::SelectStmt& stmt, std::span<const Value> params,
    std::vector<std::shared_ptr<ShardTask>> tasks) {
  Database& db = session_->database();
  db.count_shards_dispatched(tasks.size());

  std::vector<std::uint64_t> modelled_before(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    modelled_before[w] = workers_[w]->modelled_ns();
  }

  std::vector<std::shared_ptr<ShardSlot>> slots;
  slots.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    auto slot = std::make_shared<ShardSlot>();
    slot->inflight = 1;
    slots.push_back(slot);
    dispatch(*workers_[i % workers_.size()], tasks[i], slot);
  }

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    ShardSlot& slot = *slots[i];
    const auto settled = [&slot] {
      return slot.result.has_value() || (slot.inflight == 0 && slot.error);
    };
    std::unique_lock lock(slot.m);
    if (!slot.cv.wait_for(lock, options_.shard_deadline, settled) &&
        workers_.size() > 1 && !slot.reissued) {
      // Straggler: issue the shard to the next worker's replica as well;
      // whichever attempt finishes first supplies the rows.
      slot.reissued = true;
      ++slot.inflight;
      db.count_straggler_reissue();
      lock.unlock();
      dispatch(*workers_[(i + 1) % workers_.size()], tasks[i], slots[i]);
      lock.lock();
    }
    slot.cv.wait(lock, settled);
    if (!slot.result) std::rethrow_exception(slot.error);
  }

  // Gather barrier: the statement's modelled cost is the slowest worker's
  // wire/server delta (the makespan), charged to the coordinator session
  // before the residual merge executes (and is charged) normally.
  std::uint64_t makespan = 0;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    makespan =
        std::max(makespan, workers_[w]->modelled_ns() - modelled_before[w]);
  }
  session_->clock().advance_ns(makespan);

  std::vector<Database::InjectedCte> injected;
  injected.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    injected.push_back({tasks[i]->cte_name, &*slots[i]->result});
  }
  return session_->execute_with_ctes(stmt, params, injected);
}

}  // namespace kojak::db
