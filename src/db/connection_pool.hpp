#ifndef KOJAK_DB_CONNECTION_POOL_HPP
#define KOJAK_DB_CONNECTION_POOL_HPP

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "db/connection.hpp"

namespace kojak::db {

/// Fixed-capacity pool of database sessions against one Database. A
/// Connection is stateful (virtual clock, statement counters, bridge
/// marshalling buffers), so parallel evaluators must not share one; the pool
/// hands each worker an exclusive session and takes it back when the lease
/// goes out of scope. Connections are created lazily — a pool of capacity N
/// that only ever sees one worker pays for one session setup — and reused
/// across leases, so the per-profile connect cost is charged once per
/// session, not once per acquire.
///
/// The engine itself permits concurrent read-only statements (distinct
/// prepared statements / statement texts); the pool adds the per-session
/// isolation that makes the cost model and the counters race-free.
class ConnectionPool {
 public:
  ConnectionPool(Database& db, ConnectionProfile profile, std::size_t capacity,
                 DriverKind driver = DriverKind::kNative);

  ConnectionPool(const ConnectionPool&) = delete;
  ConnectionPool& operator=(const ConnectionPool&) = delete;

  /// Exclusive hold on one pooled connection; returns it on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    ~Lease();

    [[nodiscard]] Connection& operator*() const noexcept { return *conn_; }
    [[nodiscard]] Connection* operator->() const noexcept { return conn_; }
    [[nodiscard]] Connection* get() const noexcept { return conn_; }
    [[nodiscard]] explicit operator bool() const noexcept {
      return conn_ != nullptr;
    }
    /// Returns the connection early (idempotent).
    void release();

   private:
    friend class ConnectionPool;
    Lease(ConnectionPool* pool, Connection* conn) : pool_(pool), conn_(conn) {}
    ConnectionPool* pool_ = nullptr;
    Connection* conn_ = nullptr;
  };

  /// Blocks until a connection is available.
  [[nodiscard]] Lease acquire();
  /// Non-blocking variant; empty when the pool is exhausted.
  [[nodiscard]] std::optional<Lease> try_acquire();

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Connections constructed so far (lazy; <= capacity).
  [[nodiscard]] std::size_t created() const;
  /// Connections currently idle in the pool.
  [[nodiscard]] std::size_t idle() const;

  struct Stats {
    std::uint64_t acquires = 0;  ///< total leases handed out
    std::uint64_t reuses = 0;    ///< leases served by an existing session
    std::uint64_t waits = 0;     ///< leases that had to block for a return
  };
  [[nodiscard]] Stats stats() const;

  /// Aggregate modelled backend time across all sessions. `total` is the
  /// serial-equivalent cost; `max` is the parallel makespan (the busiest
  /// session's clock). Meaningful when no leases are outstanding.
  [[nodiscard]] double total_clock_us() const;
  [[nodiscard]] double max_clock_us() const;
  /// Per-session clocks in creation order (for makespan deltas across a
  /// batch: snapshot before and after, subtract index-wise).
  [[nodiscard]] std::vector<double> clock_snapshot_us() const;
  [[nodiscard]] std::uint64_t statements_executed() const;

 private:
  void give_back(Connection* conn);

  Database& db_;
  ConnectionProfile profile_;
  DriverKind driver_;
  std::size_t capacity_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Connection>> connections_;  // all ever created
  std::vector<Connection*> idle_;
  Stats stats_;
};

}  // namespace kojak::db

#endif  // KOJAK_DB_CONNECTION_POOL_HPP
