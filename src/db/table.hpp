#ifndef KOJAK_DB_TABLE_HPP
#define KOJAK_DB_TABLE_HPP

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/schema.hpp"
#include "db/value.hpp"

namespace kojak::db {

/// Secondary index over one column. Hash indexes serve equality probes,
/// ordered indexes additionally serve range scans. Indexes store row ids
/// into the table heap and are maintained on insert/update/delete.
class Index {
 public:
  enum class Kind { kHash, kOrdered };

  Index(std::string name, std::size_t column, Kind kind)
      : name_(std::move(name)), column_(column), kind_(kind) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }
  [[nodiscard]] Kind kind() const noexcept { return kind_; }

  void insert(const Value& key, std::size_t row_id);
  void erase(const Value& key, std::size_t row_id);

  /// Row ids whose key equals `key` (total-order equality).
  [[nodiscard]] std::vector<std::size_t> equal_range(const Value& key) const;

  /// Row ids with lo <= key <= hi under the total order; only for kOrdered.
  [[nodiscard]] std::vector<std::size_t> range(const Value& lo, const Value& hi) const;

  /// Row ids within the optionally-open interval [lo, hi] (nullptr = no
  /// bound on that side); only for kOrdered. NULL keys are never returned
  /// (SQL comparisons with NULL are unknown).
  [[nodiscard]] std::vector<std::size_t> range_open(const Value* lo,
                                                    const Value* hi) const;

 private:
  struct TotalLess {
    bool operator()(const Value& a, const Value& b) const noexcept {
      return Value::compare_total(a, b) < 0;
    }
  };

  std::string name_;
  std::size_t column_;
  Kind kind_;
  std::unordered_multimap<Value, std::size_t, ValueHash, ValueEqTotal> hash_;
  std::multimap<Value, std::size_t, TotalLess> ordered_;
};

/// Heap-organized table. Deleted rows become tombstones; `live` tracks
/// validity so indexes can keep stable row ids without compaction.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  [[nodiscard]] const TableSchema& schema() const noexcept { return schema_; }
  [[nodiscard]] std::size_t live_row_count() const noexcept { return live_count_; }
  [[nodiscard]] std::size_t heap_size() const noexcept { return rows_.size(); }

  /// Validates arity, coerces values to column types, enforces NOT NULL and
  /// primary-key uniqueness, appends the row, updates indexes. Returns the
  /// new row id.
  std::size_t insert(Row row);

  [[nodiscard]] bool is_live(std::size_t row_id) const {
    return row_id < rows_.size() && live_[row_id];
  }
  [[nodiscard]] const Row& row(std::size_t row_id) const { return rows_.at(row_id); }

  void erase(std::size_t row_id);
  /// Replaces the row in place (same validation as insert).
  void update(std::size_t row_id, Row row);

  /// All live row ids in heap order.
  [[nodiscard]] std::vector<std::size_t> live_rows() const;

  Index& create_index(std::string name, std::size_t column, Index::Kind kind);
  [[nodiscard]] const Index* find_index_on(std::size_t column) const;
  [[nodiscard]] const std::vector<std::unique_ptr<Index>>& indexes() const noexcept {
    return indexes_;
  }

 private:
  Row validate(Row row) const;

  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<bool> live_;
  std::size_t live_count_ = 0;
  std::vector<std::unique_ptr<Index>> indexes_;
};

}  // namespace kojak::db

#endif  // KOJAK_DB_TABLE_HPP
