#ifndef KOJAK_DB_TABLE_HPP
#define KOJAK_DB_TABLE_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/schema.hpp"
#include "db/value.hpp"

namespace kojak::db {

class Table;

// ---------------------------------------------------------------------------
// Row-id encoding. A row id is stable for the lifetime of the row and
// encodes (partition, local offset): the high kRowIdPartitionBits carry the
// partition index, the remaining low bits the offset into that partition's
// heap. Partition 0 therefore encodes to the plain local offset, so an
// unpartitioned table keeps the exact ids it always had.

inline constexpr std::size_t kRowIdPartitionBits = 10;  // kMaxTablePartitions
inline constexpr std::size_t kRowIdLocalBits =
    sizeof(std::size_t) * 8 - kRowIdPartitionBits;
inline constexpr std::size_t kRowIdLocalMask =
    (std::size_t{1} << kRowIdLocalBits) - 1;

[[nodiscard]] constexpr std::size_t make_row_id(std::size_t partition,
                                                std::size_t local) noexcept {
  return (partition << kRowIdLocalBits) | local;
}
[[nodiscard]] constexpr std::size_t row_id_partition(std::size_t row_id) noexcept {
  return row_id >> kRowIdLocalBits;
}
[[nodiscard]] constexpr std::size_t row_id_local(std::size_t row_id) noexcept {
  return row_id & kRowIdLocalMask;
}

/// Secondary index over one column. Hash indexes serve equality probes,
/// ordered indexes additionally serve range scans. Indexes store row ids
/// into the table heap and are maintained on insert/update/delete.
///
/// Under table partitioning the index is itself sharded: one container per
/// partition, keyed off the row id's partition bits, so partition scans and
/// drops never touch foreign shards. When the indexed column IS the
/// partition column, equality probes route to exactly one shard (the shard
/// the heap's router put the key in); otherwise probes aggregate across
/// shards in partition order. Range results merge shard-local key order
/// into one global key order (stable: equal keys keep partition order), so
/// a single-partition table behaves byte-for-byte like the pre-partitioning
/// index.
class Index {
 public:
  enum class Kind { kHash, kOrdered };

  /// `router` must agree with the owning table's heap routing; `routed`
  /// marks the indexed column as the table's partition column.
  Index(std::string name, std::size_t column, Kind kind,
        PartitionRouter router = {}, bool routed = false);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }
  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return router_.partitions();
  }

  void insert(const Value& key, std::size_t row_id);
  void erase(const Value& key, std::size_t row_id);

  /// Row ids whose key equals `key` (total-order equality). Routes to one
  /// shard when the indexed column is the partition column; otherwise
  /// aggregates shards in partition order.
  [[nodiscard]] std::vector<std::size_t> equal_range(const Value& key) const;

  /// Row ids with lo <= key <= hi under the total order; only for kOrdered.
  [[nodiscard]] std::vector<std::size_t> range(const Value& lo, const Value& hi) const;

  /// Row ids within the optionally-open interval [lo, hi] (nullptr = no
  /// bound on that side); only for kOrdered. NULL keys are never returned
  /// (SQL comparisons with NULL are unknown). Results are in global key
  /// order regardless of sharding.
  [[nodiscard]] std::vector<std::size_t> range_open(const Value* lo,
                                                    const Value* hi) const;

 private:
  struct TotalLess {
    bool operator()(const Value& a, const Value& b) const noexcept {
      return Value::compare_total(a, b) < 0;
    }
  };
  using HashShard =
      std::unordered_multimap<Value, std::size_t, ValueHash, ValueEqTotal>;
  using OrderedShard = std::multimap<Value, std::size_t, TotalLess>;

  std::string name_;
  std::size_t column_;
  Kind kind_;
  PartitionRouter router_;
  bool routed_ = false;
  std::vector<HashShard> hash_;
  std::vector<OrderedShard> ordered_;
};

/// Partitioned, heap-organized table. The schema's PartitionSpec (absent =
/// one partition) hashes or range-routes one column across N partitions;
/// each partition owns its own row heap, tombstone bitmap, and index
/// shards. `Table` is the coordinating facade: row ids encode
/// (partition, local offset) and stay stable without compaction, exactly as
/// the single-heap table's offsets did (partition 0 ids ARE plain offsets).
/// Deleted rows become tombstones; `live` tracks validity per partition.
///
/// `STORAGE COLUMNAR` tables additionally maintain one typed vector per
/// column plus a validity bitmap per partition, lane-aligned with the row
/// heap (lane i of every column vector mirrors heap row i). The heap stays
/// the source of truth — `row(id)`, indexes, and row ids behave
/// identically in both modes — while the column vectors give the
/// executor's vectorized scan kernels contiguous typed data.
class Table {
 public:
  explicit Table(TableSchema schema);

  [[nodiscard]] const TableSchema& schema() const noexcept { return schema_; }
  [[nodiscard]] std::size_t live_row_count() const noexcept { return live_count_; }
  [[nodiscard]] std::size_t heap_size() const noexcept;

  // --- partition topology ---------------------------------------------------
  [[nodiscard]] std::size_t partition_count() const noexcept {
    return parts_.size();
  }
  /// Resolved index of the partition column; nullopt when unpartitioned.
  [[nodiscard]] std::optional<std::size_t> partition_column() const noexcept {
    return partition_column_;
  }
  /// Partition a value of the partition column routes to (0 when
  /// unpartitioned; NULLs route to 0).
  [[nodiscard]] std::size_t route(const Value& v) const noexcept {
    return router_.route(v);
  }
  [[nodiscard]] std::size_t partition_live_count(std::size_t partition) const {
    return parts_.at(partition).live_count;
  }

  // --- partition versions ---------------------------------------------------
  // Every partition carries a monotonic version counter, bumped by each
  // mutation that touches it: insert and delete bump the owning partition,
  // an in-place update bumps its partition once, and an update that moves
  // the row across partitions bumps BOTH sides (the tombstoned source and
  // the appending target). Versions are what incremental consumers key on:
  // a cached per-partition result is valid exactly while the partition's
  // version is unchanged, and replica staleness is a version comparison.
  [[nodiscard]] std::uint64_t partition_version(std::size_t partition) const {
    return parts_.at(partition).version;
  }
  /// Sum of all partition versions: a monotonic whole-table data version
  /// (any mutation advances it by >= 1).
  [[nodiscard]] std::uint64_t table_version() const noexcept;

  /// Validates arity, coerces values to column types, enforces NOT NULL and
  /// primary-key uniqueness, routes the row to its partition, appends it,
  /// updates indexes. Returns the new row id.
  std::size_t insert(Row row);

  [[nodiscard]] bool is_live(std::size_t row_id) const {
    const std::size_t p = row_id_partition(row_id);
    const std::size_t local = row_id_local(row_id);
    return p < parts_.size() && local < parts_[p].rows.size() &&
           parts_[p].live[local];
  }
  [[nodiscard]] const Row& row(std::size_t row_id) const {
    return parts_.at(row_id_partition(row_id)).rows.at(row_id_local(row_id));
  }

  void erase(std::size_t row_id);
  /// Replaces the row in place (same validation as insert). When the new
  /// value of the partition column routes elsewhere, the row moves: the old
  /// id dies and the row re-appears under a fresh id in the target
  /// partition (indexes follow).
  void update(std::size_t row_id, Row row);

  /// All live row ids: partitions in order, heap order within each.
  [[nodiscard]] std::vector<std::size_t> live_rows() const;
  /// Live row ids of one partition, in heap order.
  [[nodiscard]] std::vector<std::size_t> live_rows_in(std::size_t partition) const;

  /// Zero-copy scan: fn(row_id, row) for every live row, partitions in
  /// order, heap order within each. The hot scan path — no row-id vector is
  /// materialized. `fn` must not mutate the table.
  template <typename Fn>
  void for_each_live_row(Fn&& fn) const {
    for (std::size_t p = 0; p < parts_.size(); ++p) {
      for_each_live_row_in(p, fn);
    }
  }
  /// The same over a single partition (parallel partition scans give each
  /// worker one partition).
  template <typename Fn>
  void for_each_live_row_in(std::size_t partition, Fn&& fn) const {
    const PartitionStore& part = parts_.at(partition);
    for (std::size_t local = 0; local < part.rows.size(); ++local) {
      if (part.live[local]) fn(make_row_id(partition, local), part.rows[local]);
    }
  }

  // --- columnar access --------------------------------------------------------
  /// True when the schema declared STORAGE COLUMNAR (column vectors are
  /// maintained and column_slice() is usable).
  [[nodiscard]] bool columnar() const noexcept {
    return schema_.storage() == StorageMode::kColumnar;
  }
  /// One partition's worth of one column, as raw typed lanes. Exactly one
  /// of ints/reals/strs is non-null, chosen by the column's declared type:
  /// INTEGER/BOOLEAN/DATETIME lanes are int64 (bools as 0/1), DOUBLE lanes
  /// are double, TEXT lanes are std::string. `valid[i]` is 1 for non-NULL
  /// cells; NULL cells hold a zero value in the typed lane. Lanes cover
  /// tombstoned rows too — combine with live_bits() to skip them.
  struct ColumnSlice {
    const std::int64_t* ints = nullptr;
    const double* reals = nullptr;
    const std::string* strs = nullptr;
    const std::uint8_t* valid = nullptr;
    std::size_t size = 0;
  };
  /// Typed lanes of `column` in `partition`; throws when the table is not
  /// columnar (the vectors are not maintained in row mode).
  [[nodiscard]] ColumnSlice column_slice(std::size_t partition,
                                         std::size_t column) const;
  /// Per-partition liveness bitmap (1 = live), lane-aligned with the heap
  /// and with column_slice() lanes. Valid in both storage modes.
  [[nodiscard]] const std::uint8_t* live_bits(std::size_t partition) const {
    return parts_.at(partition).live.data();
  }
  /// One partition's key column bundled with its liveness bitmap — the unit
  /// the hash-join build/probe and GROUP BY key extraction consume. A lane
  /// is usable iff it is live (not tombstoned) AND valid (non-NULL): NULL
  /// keys never match under SQL equality and tombstones are deleted rows.
  struct KeySlice {
    ColumnSlice column;
    const std::uint8_t* live = nullptr;
    std::size_t partition = 0;
    [[nodiscard]] bool usable(std::size_t lane) const noexcept {
      return live[lane] != 0 && column.valid[lane] != 0;
    }
  };
  /// key_slice(p, c) = {column_slice(p, c), live_bits(p), p}; key_slices
  /// collects one per partition — or exactly one when `pinned` restricts the
  /// scan (a `PARTITION (k)` selector or an equality route). Columnar only.
  [[nodiscard]] KeySlice key_slice(std::size_t partition,
                                   std::size_t column) const;
  [[nodiscard]] std::vector<KeySlice> key_slices(
      std::size_t column, std::optional<std::size_t> pinned) const;
  /// Heap size (live + tombstoned lanes) of one partition.
  [[nodiscard]] std::size_t partition_heap_size(std::size_t partition) const {
    return parts_.at(partition).rows.size();
  }

  Index& create_index(std::string name, std::size_t column, Index::Kind kind);
  [[nodiscard]] const Index* find_index_on(std::size_t column) const;
  [[nodiscard]] const std::vector<std::unique_ptr<Index>>& indexes() const noexcept {
    return indexes_;
  }

 private:
  /// One column's typed lanes in one partition (columnar mode only). The
  /// vector matching the column's type grows in lockstep with the heap; the
  /// other two stay empty.
  struct ColumnVec {
    std::vector<std::int64_t> ints;
    std::vector<double> reals;
    std::vector<std::string> strs;
    std::vector<std::uint8_t> valid;
  };

  /// One partition's storage: row heap + tombstone bitmap + version (+
  /// column vectors in columnar mode). `live` is byte-per-row so scan
  /// kernels can read it as a contiguous bitmap.
  struct PartitionStore {
    std::vector<Row> rows;
    std::vector<std::uint8_t> live;
    std::size_t live_count = 0;
    std::uint64_t version = 0;  ///< bumped by every mutation of this partition
    std::vector<ColumnVec> cols;  ///< empty unless the table is columnar
  };

  Row validate(Row row) const;
  [[nodiscard]] std::size_t route_row(const Row& row) const noexcept {
    return partition_column_ ? router_.route(row[*partition_column_]) : 0;
  }
  /// Appends an already-validated row to `partition`; returns the new id.
  std::size_t place_row(std::size_t partition, Row row);
  /// Columnar maintenance: appends one lane per column mirroring `row`, or
  /// overwrites the lanes at `lane` (in-place update).
  void append_column_lanes(PartitionStore& part, const Row& row);
  void overwrite_column_lanes(PartitionStore& part, std::size_t lane,
                              const Row& row);

  TableSchema schema_;
  PartitionRouter router_;
  std::optional<std::size_t> partition_column_;
  std::vector<PartitionStore> parts_;
  std::size_t live_count_ = 0;
  std::vector<std::unique_ptr<Index>> indexes_;
};

}  // namespace kojak::db

#endif  // KOJAK_DB_TABLE_HPP
