#ifndef KOJAK_DB_CONNECTION_HPP
#define KOJAK_DB_CONNECTION_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "db/database.hpp"

namespace kojak::db {

/// Virtual clock that accumulates modelled latency in nanoseconds. The
/// paper's Section 5 compares 1999-era database servers (Oracle 7, MS
/// Access, MS SQL Server, Postgres) that cannot be run here; the engine
/// executes every statement for real and the clock charges deterministic
/// wire/server costs calibrated to the paper's reported factors.
class SimClock {
 public:
  void advance_ns(std::uint64_t ns) noexcept { now_ns_ += ns; }
  void advance_us(double us) noexcept {
    now_ns_ += static_cast<std::uint64_t>(us * 1000.0);
  }
  [[nodiscard]] std::uint64_t now_ns() const noexcept { return now_ns_; }
  [[nodiscard]] double now_us() const noexcept {
    return static_cast<double>(now_ns_) / 1000.0;
  }
  [[nodiscard]] double now_ms() const noexcept {
    return static_cast<double>(now_ns_) / 1e6;
  }
  void reset() noexcept { now_ns_ = 0; }

 private:
  std::uint64_t now_ns_ = 0;
};

/// Per-operation cost model of one backend deployment. All costs in
/// microseconds of virtual time. `distributed` backends pay a round trip
/// per statement; the in-process backend (MS Access profile) does not.
struct ConnectionProfile {
  std::string name;
  bool distributed = true;
  double connect_us = 0;         ///< one-time session setup
  double stmt_roundtrip_us = 0;  ///< client<->server RTT per statement
  double insert_row_us = 0;      ///< server-side cost per inserted row
  double fetch_row_us = 0;       ///< server-side + wire cost per fetched row
  double value_wire_us = 0;      ///< per value transferred either direction

  /// Profiles calibrated to §5: MS Access (in-process) fastest; Oracle 7
  /// ~20x slower insertion than Access; MS SQL Server and Postgres ~2x
  /// faster than Oracle. EXPERIMENTS.md documents the calibration.
  [[nodiscard]] static ConnectionProfile access_local();
  [[nodiscard]] static ConnectionProfile oracle7();
  [[nodiscard]] static ConnectionProfile mssql_server();
  [[nodiscard]] static ConnectionProfile postgres();
  /// Ideal profile with zero modelled cost (pure engine time).
  [[nodiscard]] static ConnectionProfile in_memory();

  [[nodiscard]] static std::vector<ConnectionProfile> all_paper_profiles();
};

/// Client driver model. The paper accessed databases from Java via JDBC and
/// reports a 2-4x penalty vs. C-based interfaces; kBridge reproduces the
/// mechanism by physically serializing every result value to text and
/// re-parsing it (type-tagged), plus a modelled per-row dispatch cost.
enum class DriverKind { kNative, kBridge };

[[nodiscard]] std::string_view to_string(DriverKind kind);

/// A session against a Database through a cost profile and a driver.
/// Execution is always real (the embedded engine runs the statement); the
/// clock charge and the bridge marshalling are layered on top.
class Connection {
 public:
  Connection(Database& db, ConnectionProfile profile,
             DriverKind driver = DriverKind::kNative);

  [[nodiscard]] const ConnectionProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] DriverKind driver() const noexcept { return driver_; }
  [[nodiscard]] SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] const SimClock& clock() const noexcept { return clock_; }
  [[nodiscard]] Database& database() noexcept { return db_; }
  [[nodiscard]] const Database& database() const noexcept { return db_; }

  /// Table-layout introspection, forwarded from the catalog: sessions are
  /// what query compilers hold, so the layout metadata a compiler plans
  /// against (partition specs, layout fingerprint) is reachable without
  /// touching the engine directly.
  [[nodiscard]] std::optional<Database::TableLayout> table_layout(
      std::string_view name) const {
    return db_.table_layout(name);
  }
  [[nodiscard]] std::uint64_t layout_fingerprint() const {
    return db_.layout_fingerprint();
  }

  /// Executes SQL text; charges parse+plan (real engine) plus modelled costs.
  QueryResult execute(std::string_view sql_text, std::span<const Value> params = {});
  QueryResult execute(PreparedStatement& stmt, std::span<const Value> params = {});

  /// Executes a SELECT with some WITH entries pre-materialized (the
  /// distributed coordinator's gather path): injected names resolve to
  /// worker results instead of executing their bodies. Charged like any
  /// other statement against this session's cost profile.
  QueryResult execute_with_ctes(sql::SelectStmt& stmt,
                                std::span<const Value> params,
                                std::span<const Database::InjectedCte> injected);

  /// Statements issued since construction (bench bookkeeping).
  [[nodiscard]] std::uint64_t statements_executed() const noexcept {
    return statements_;
  }
  [[nodiscard]] std::uint64_t rows_transferred() const noexcept { return rows_; }

 private:
  QueryResult finish(QueryResult result, std::size_t bound_values);
  void charge_statement(const QueryResult& result, std::size_t bound_values);

  Database& db_;
  ConnectionProfile profile_;
  DriverKind driver_;
  SimClock clock_;
  std::uint64_t statements_ = 0;
  std::uint64_t rows_ = 0;
};

/// Round-trips a result set through the text marshalling a JDBC-style bridge
/// performs (serialize every value, re-parse with a type tag). Returns a
/// result equal to the input; the cost is the point. Exposed for tests.
[[nodiscard]] QueryResult bridge_marshal_roundtrip(const QueryResult& result);

}  // namespace kojak::db

#endif  // KOJAK_DB_CONNECTION_HPP
