#include "support/str.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace kojak::support {

std::string_view trim(std::string_view text) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && is_space(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string to_upper(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string sql_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '\'';
  for (char c : text) {
    if (c == '\'') out += '\'';
    out += c;
  }
  out += '\'';
  return out;
}

std::string format_double(double value, int precision) {
  char buf[64];
  if (precision >= 17) {
    // Shortest representation that round-trips: try ascending precision.
    for (int p = 15; p <= 17; ++p) {
      std::snprintf(buf, sizeof buf, "%.*g", p, value);
      if (std::strtod(buf, nullptr) == value) return buf;
    }
    return buf;
  }
  std::snprintf(buf, sizeof buf, "%.*g", precision, value);
  return buf;
}

}  // namespace kojak::support
