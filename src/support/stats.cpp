#include "support/stats.hpp"

#include <cmath>

namespace kojak::support {

void RunningStats::push(double value, std::uint64_t tag) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  if (value < min_) {
    min_ = value;
    min_tag_ = tag;
  }
  if (value > max_) {
    max_ = value;
    max_tag_ = tag;
  }
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  if (other.min_ < min_) {
    min_ = other.min_;
    min_tag_ = other.min_tag_;
  }
  if (other.max_ > max_) {
    max_ = other.max_;
    max_tag_ = other.max_tag_;
  }
}

double RunningStats::variance_population() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::variance_sample() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev_population() const noexcept {
  return std::sqrt(variance_population());
}

double RunningStats::stddev_sample() const noexcept {
  return std::sqrt(variance_sample());
}

}  // namespace kojak::support
