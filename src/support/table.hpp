#ifndef KOJAK_SUPPORT_TABLE_HPP
#define KOJAK_SUPPORT_TABLE_HPP

#include <string>
#include <vector>

namespace kojak::support {

/// Renders aligned ASCII tables; used by examples and benches to print the
/// ranked-property tables COSY presents to the application programmer.
class TablePrinter {
 public:
  enum class Align { kLeft, kRight };

  TablePrinter& add_column(std::string header, Align align = Align::kLeft);
  TablePrinter& add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders header, separator, and rows. Missing cells render empty;
  /// surplus cells are dropped.
  [[nodiscard]] std::string render() const;

 private:
  struct Column {
    std::string header;
    Align align;
  };
  std::vector<Column> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kojak::support

#endif  // KOJAK_SUPPORT_TABLE_HPP
