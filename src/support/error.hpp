#ifndef KOJAK_SUPPORT_ERROR_HPP
#define KOJAK_SUPPORT_ERROR_HPP

#include <stdexcept>
#include <string>

#include "support/source_location.hpp"

namespace kojak::support {

/// Root of the project's exception hierarchy (Core Guidelines E.2/E.14:
/// throw exceptions derived from a project-specific base, catch by reference).
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// Lexical or syntactic error in an ASL spec or SQL statement.
class ParseError : public Error {
 public:
  ParseError(std::string message, SourceLoc loc)
      : Error(loc.to_string() + ": " + message), loc_(loc) {}

  [[nodiscard]] SourceLoc loc() const noexcept { return loc_; }

 private:
  SourceLoc loc_;
};

/// Semantic error (unknown name, type mismatch, duplicate declaration, ...).
class SemaError : public Error {
 public:
  SemaError(std::string message, SourceLoc loc)
      : Error(loc.to_string() + ": " + message), loc_(loc) {}

  [[nodiscard]] SourceLoc loc() const noexcept { return loc_; }

 private:
  SourceLoc loc_;
};

/// Runtime failure while executing a query or evaluating a property
/// (UNIQUE over a non-singleton set, division by zero, unknown table, ...).
class EvalError : public Error {
 public:
  using Error::Error;
};

/// Failure while importing performance data (malformed report file, ...).
class ImportError : public Error {
 public:
  using Error::Error;
};

}  // namespace kojak::support

#endif  // KOJAK_SUPPORT_ERROR_HPP
