#include "support/table.hpp"

#include <algorithm>

namespace kojak::support {

TablePrinter& TablePrinter::add_column(std::string header, Align align) {
  columns_.push_back({std::move(header), align});
  return *this;
}

TablePrinter& TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].header.size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < columns_.size() && c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto pad = [&](const std::string& cell, std::size_t c) {
    std::string out;
    const std::size_t w = widths[c];
    const std::size_t fill = w > cell.size() ? w - cell.size() : 0;
    if (columns_[c].align == Align::kRight) out.append(fill, ' ');
    out += cell;
    if (columns_[c].align == Align::kLeft) out.append(fill, ' ');
    return out;
  };

  std::string out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out += "  ";
    out += pad(columns_[c].header, c);
  }
  out += '\n';
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out += "  ";
    out.append(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += "  ";
      out += pad(c < row.size() ? row[c] : std::string{}, c);
    }
    out += '\n';
  }
  return out;
}

}  // namespace kojak::support
