#ifndef KOJAK_SUPPORT_SOURCE_LOCATION_HPP
#define KOJAK_SUPPORT_SOURCE_LOCATION_HPP

#include <cstddef>
#include <compare>
#include <string>

namespace kojak::support {

/// A position inside a specification or query source text.
/// Lines and columns are 1-based; `offset` is the 0-based byte offset.
struct SourceLoc {
  std::size_t line = 1;
  std::size_t column = 1;
  std::size_t offset = 0;

  friend auto operator<=>(const SourceLoc&, const SourceLoc&) = default;

  [[nodiscard]] std::string to_string() const {
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

/// A half-open byte range [begin, end) with the location of its start.
struct SourceRange {
  SourceLoc begin;
  SourceLoc end;

  friend bool operator==(const SourceRange&, const SourceRange&) = default;

  [[nodiscard]] std::string to_string() const { return begin.to_string(); }
};

}  // namespace kojak::support

#endif  // KOJAK_SUPPORT_SOURCE_LOCATION_HPP
