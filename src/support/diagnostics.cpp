#include "support/diagnostics.hpp"

#include <sstream>

namespace kojak::support {

std::string_view to_string(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kNote:
      return "note";
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::string out;
  out += loc.to_string();
  out += ": ";
  out += kojak::support::to_string(severity);
  out += ": ";
  out += message;
  return out;
}

void DiagnosticEngine::error(SourceLoc loc, std::string message) {
  diags_.push_back({DiagSeverity::kError, loc, std::move(message)});
  ++error_count_;
}

void DiagnosticEngine::warning(SourceLoc loc, std::string message) {
  diags_.push_back({DiagSeverity::kWarning, loc, std::move(message)});
}

void DiagnosticEngine::note(SourceLoc loc, std::string message) {
  diags_.push_back({DiagSeverity::kNote, loc, std::move(message)});
}

namespace {

std::string_view line_at(std::string_view source, std::size_t line) {
  std::size_t current = 1;
  std::size_t start = 0;
  while (current < line) {
    const std::size_t nl = source.find('\n', start);
    if (nl == std::string_view::npos) return {};
    start = nl + 1;
    ++current;
  }
  std::size_t end = source.find('\n', start);
  if (end == std::string_view::npos) end = source.size();
  return source.substr(start, end - start);
}

}  // namespace

std::string DiagnosticEngine::render(std::string_view source) const {
  std::ostringstream out;
  for (const Diagnostic& diag : diags_) {
    out << diag.to_string() << '\n';
    if (!source.empty()) {
      const std::string_view line = line_at(source, diag.loc.line);
      if (!line.empty()) {
        out << "    " << line << '\n';
        out << "    ";
        for (std::size_t i = 1; i < diag.loc.column; ++i) {
          out << (i - 1 < line.size() && line[i - 1] == '\t' ? '\t' : ' ');
        }
        out << "^\n";
      }
    }
  }
  return out.str();
}

void DiagnosticEngine::clear() {
  diags_.clear();
  error_count_ = 0;
}

}  // namespace kojak::support
