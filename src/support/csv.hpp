#ifndef KOJAK_SUPPORT_CSV_HPP
#define KOJAK_SUPPORT_CSV_HPP

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace kojak::support {

/// Minimal RFC-4180-style CSV writer for bench outputs; quotes fields
/// containing separators, quotes, or newlines.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& cells);

  [[nodiscard]] static std::string escape(std::string_view cell);

 private:
  std::ostream& out_;
};

/// Parses one CSV line into fields, honouring quoted fields with doubled
/// quotes. Embedded newlines are not supported (bench files never use them).
[[nodiscard]] std::vector<std::string> parse_csv_line(std::string_view line);

}  // namespace kojak::support

#endif  // KOJAK_SUPPORT_CSV_HPP
