#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace kojak::support {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Join here, not via jthread's destructor: members destroy in reverse
  // declaration order, so tasks_/mutex_/cv_ would be gone before workers_
  // (declared first) joins — a worker still draining the queue would read
  // freed memory.
  for (std::jthread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t num_chunks = std::min(n, size() * 4);
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;

  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    futures.push_back(submit([&] {
      while (true) {
        const std::size_t begin = next.fetch_add(chunk);
        if (begin >= n) return;
        const std::size_t end = std::min(n, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) body(i);
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (auto& task : tasks) {
    futures.push_back(submit(std::move(task)));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace kojak::support
