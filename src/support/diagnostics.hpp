#ifndef KOJAK_SUPPORT_DIAGNOSTICS_HPP
#define KOJAK_SUPPORT_DIAGNOSTICS_HPP

#include <string>
#include <string_view>
#include <vector>

#include "support/source_location.hpp"

namespace kojak::support {

enum class DiagSeverity { kNote, kWarning, kError };

[[nodiscard]] std::string_view to_string(DiagSeverity severity);

/// One diagnostic message anchored to a source position.
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

/// Collects diagnostics during a front-end pass so that a parser can recover
/// and report several problems at once instead of stopping at the first.
class DiagnosticEngine {
 public:
  void error(SourceLoc loc, std::string message);
  void warning(SourceLoc loc, std::string message);
  void note(SourceLoc loc, std::string message);

  [[nodiscard]] bool has_errors() const noexcept { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const noexcept { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diags_;
  }

  /// Renders all diagnostics; when `source` is non-empty each message is
  /// followed by the offending line and a caret marker.
  [[nodiscard]] std::string render(std::string_view source = {}) const;

  void clear();

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

}  // namespace kojak::support

#endif  // KOJAK_SUPPORT_DIAGNOSTICS_HPP
