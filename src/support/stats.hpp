#ifndef KOJAK_SUPPORT_STATS_HPP
#define KOJAK_SUPPORT_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <limits>

namespace kojak::support {

/// Numerically stable running statistics (Welford's algorithm) over a stream
/// of samples. Tracks count, mean, variance, min/max, and which sample index
/// attained the extrema — the Apprentice summarizer needs "the processor that
/// was first or last in the respective category" (paper §4.1).
class RunningStats {
 public:
  void push(double value) { push(value, count_); }

  /// Adds `value` tagged with an explicit sample id (e.g. a PE number).
  void push(double value, std::uint64_t tag);

  /// Merges another accumulator into this one (parallel reduction; Chan et al.).
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }
  [[nodiscard]] double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }

  /// Population variance (divides by n). Returns 0 for fewer than 2 samples.
  [[nodiscard]] double variance_population() const noexcept;
  /// Sample variance (divides by n-1). Returns 0 for fewer than 2 samples.
  [[nodiscard]] double variance_sample() const noexcept;
  [[nodiscard]] double stddev_population() const noexcept;
  [[nodiscard]] double stddev_sample() const noexcept;

  [[nodiscard]] double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] std::uint64_t min_tag() const noexcept { return min_tag_; }
  [[nodiscard]] std::uint64_t max_tag() const noexcept { return max_tag_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::uint64_t min_tag_ = 0;
  std::uint64_t max_tag_ = 0;
};

}  // namespace kojak::support

#endif  // KOJAK_SUPPORT_STATS_HPP
