#ifndef KOJAK_SUPPORT_THREAD_POOL_HPP
#define KOJAK_SUPPORT_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace kojak::support {

/// Fixed-size worker pool. The simulator runs PE timelines on it and the
/// analyzer evaluates property contexts on it. Results are always reduced in
/// a deterministic order by the caller, so pooled execution never changes
/// output (only wall time).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future reports its result or exception.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& task) {
    using R = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    {
      std::lock_guard lock(mutex_);
      tasks_.emplace([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs body(i) for i in [0, n), blocking until all complete. Indices are
  /// chunked contiguously; exceptions from any chunk are rethrown (first one).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Runs heterogeneous tasks to completion (the batch analyzer's shape:
  /// one task per run × suite, each task a full analysis). The first
  /// exception is rethrown after every task finished.
  void run_all(std::vector<std::function<void()>> tasks);

 private:
  void worker_loop();

  std::vector<std::jthread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool sized to the hardware; created on first use.
[[nodiscard]] ThreadPool& global_pool();

}  // namespace kojak::support

#endif  // KOJAK_SUPPORT_THREAD_POOL_HPP
