#ifndef KOJAK_SUPPORT_RNG_HPP
#define KOJAK_SUPPORT_RNG_HPP

#include <cassert>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace kojak::support {

/// Deterministic random source. Every stochastic component in the project
/// (simulator noise, randomized tests, workload generators) draws from an Rng
/// seeded explicitly, so a (seed, parameters) pair reproduces a run exactly.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Normal truncated below at `floor` (re-sampling would skew the mean for
  /// heavy truncation, so we clamp; simulator noise keeps stddev << mean).
  [[nodiscard]] double normal_at_least(double mean, double stddev, double floor) {
    const double v = normal(mean, stddev);
    return v < floor ? floor : v;
  }

  [[nodiscard]] double lognormal(double log_mean, double log_stddev) {
    return std::lognormal_distribution<double>(log_mean, log_stddev)(engine_);
  }

  [[nodiscard]] double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// True with probability p.
  [[nodiscard]] bool chance(double p) { return uniform() < p; }

  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) {
    assert(!items.empty());
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// Derives an independent child generator; used to give each simulated PE
  /// its own stream so results do not depend on evaluation order.
  [[nodiscard]] Rng fork() { return Rng(engine_() ^ 0xD1B54A32D192ED03ULL); }

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace kojak::support

#endif  // KOJAK_SUPPORT_RNG_HPP
