#ifndef KOJAK_SUPPORT_STR_HPP
#define KOJAK_SUPPORT_STR_HPP

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace kojak::support {

[[nodiscard]] std::string_view trim(std::string_view text);
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);
/// Splits on whitespace runs, skipping empty fields.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view text);
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);
[[nodiscard]] std::string to_lower(std::string_view text);
[[nodiscard]] std::string to_upper(std::string_view text);
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix);

/// Doubles embedded quotes and wraps in single quotes (SQL string literal).
[[nodiscard]] std::string sql_quote(std::string_view text);

/// Formats a double with up to `precision` significant digits, trimming
/// trailing zeros, so values round-trip through report files and SQL text.
[[nodiscard]] std::string format_double(double value, int precision = 17);

/// Streams all arguments into one string (std::format is unavailable in
/// libstdc++ 12, so this is the project-wide formatting helper).
template <typename... Args>
[[nodiscard]] std::string cat(const Args&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}

}  // namespace kojak::support

#endif  // KOJAK_SUPPORT_STR_HPP
