#include "support/csv.hpp"

namespace kojak::support {

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out += '"';
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace kojak::support
