#ifndef KOJAK_PERF_REPORT_IO_HPP
#define KOJAK_PERF_REPORT_IO_HPP

#include <iosfwd>
#include <string>
#include <string_view>

#include "perf/apprentice.hpp"

namespace kojak::perf {

/// Serializes an experiment (static structure + test runs) in the textual
/// Apprentice-report format. This models the file Apprentice writes and
/// COSY transfers into the database (paper §3: "The resulting information is
/// written to a file and transferred into the database").
[[nodiscard]] std::string write_report(const ExperimentData& data);
void write_report(const ExperimentData& data, std::ostream& out);

/// Parses a report produced by write_report (or by hand). Throws
/// support::ImportError with a line number on malformed input. Tolerates
/// blank lines and `#` comments.
[[nodiscard]] ExperimentData parse_report(std::string_view text);

}  // namespace kojak::perf

#endif  // KOJAK_PERF_REPORT_IO_HPP
