#ifndef KOJAK_PERF_APPRENTICE_HPP
#define KOJAK_PERF_APPRENTICE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "perf/app_model.hpp"
#include "perf/timing_types.hpp"

namespace kojak::perf {

/// Statistics of one quantity across the PEs of a run, exactly the shape the
/// CallTiming class stores (paper §4.1): min/max/mean/stddev plus "the
/// processor that was first or last in the respective category".
struct PeStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation
  std::uint32_t min_pe = 0;
  std::uint32_t max_pe = 0;

  [[nodiscard]] static PeStats from(const std::vector<double>& per_pe);
};

/// Summary timings of one region in one test run; all times are summed over
/// PEs (paper §4.2: "all timings in the database are summed up values of all
/// processes") and given in milliseconds.
struct RegionTiming {
  std::string region;
  double excl_ms = 0.0;
  double incl_ms = 0.0;
  double ovhd_ms = 0.0;  ///< sum of all typed overheads
  /// One entry per overhead type with nonzero time ("for each region there
  /// is at most one object per timing type and per test run").
  std::vector<std::pair<TimingType, double>> typed_ms;
};

/// Per-run statistics of one call site (indexes ProgramStructure::call_sites).
struct CallSiteTiming {
  std::size_t site_index = 0;
  PeStats calls;
  PeStats time_ms;
};

/// Everything Apprentice reports for one test run.
struct RunResult {
  int nope = 1;
  int clockspeed_mhz = 450;
  std::int64_t start_time = 0;  // epoch seconds
  std::vector<RegionTiming> regions;
  std::vector<CallSiteTiming> calls;

  [[nodiscard]] const RegionTiming* find_region(std::string_view name) const {
    for (const RegionTiming& r : regions) {
      if (r.region == name) return &r;
    }
    return nullptr;
  }
};

// --- static program information --------------------------------------------

struct StaticRegion {
  std::string name;
  RegionKind kind = RegionKind::kBasicBlock;
  std::string parent;  ///< empty for a function's body region
};

struct StaticFunction {
  std::string name;
  std::vector<StaticRegion> regions;  ///< DFS order, body first
};

struct CallSite {
  std::string callee;          ///< function being called
  std::string caller;          ///< function containing the call
  std::string calling_region;  ///< region around the call
};

/// Static program information of one program version (paper §3: region
/// structure and source code live in the database next to the dynamic data).
struct ProgramStructure {
  std::string program_name;
  std::int64_t compilation_time = 0;  // epoch seconds
  std::string source_code;
  std::vector<StaticFunction> functions;
  std::vector<CallSite> call_sites;

  [[nodiscard]] const StaticFunction* find_function(std::string_view name) const {
    for (const StaticFunction& fn : functions) {
      if (fn.name == name) return &fn;
    }
    return nullptr;
  }
};

/// One program version with its test runs: the unit COSY imports.
struct ExperimentData {
  ProgramStructure structure;
  std::vector<RunResult> runs;
};

/// Derives the static structure (functions, region tree, call sites,
/// generated pseudo-source) from an application spec. The implicit runtime
/// function "barrier" is materialized when any region synchronizes.
[[nodiscard]] ProgramStructure structure_of(const AppSpec& app);

/// Name of the synthetic runtime barrier function.
inline constexpr std::string_view kBarrierFunction = "barrier";

}  // namespace kojak::perf

#endif  // KOJAK_PERF_APPRENTICE_HPP
