#ifndef KOJAK_PERF_WORKLOADS_HPP
#define KOJAK_PERF_WORKLOADS_HPP

#include "perf/app_model.hpp"

namespace kojak::perf::workloads {

/// Near-perfectly scaling stencil kernel: the control workload — total cost
/// stays close to zero across PE counts (experiment T5's flat curve).
[[nodiscard]] AppSpec scalable_stencil();

/// The flagship workload of the benches and examples: an ocean-circulation
/// style SPMD code with a serial init, an imbalanced compute loop with halo
/// exchange and a barrier per iteration, a reduction, and serialized
/// checkpoint I/O. Reproduces the bottleneck mix COSY's property suite
/// targets (SublinearSpeedup / SyncCost / LoadImbalance / IOCost...).
[[nodiscard]] AppSpec imbalanced_ocean();

/// Amdahl-style workload: a dominant replicated-serial region.
[[nodiscard]] AppSpec serial_bottleneck();

/// Many tiny point-to-point messages: latency-bound halo exchange.
[[nodiscard]] AppSpec message_bound();

/// Serialized checkpoint I/O through PE 0 dominating everything else.
[[nodiscard]] AppSpec io_heavy();

/// Synthetic program with `functions` functions x `regions_per_function`
/// leaf regions (plus loop parents): sized input for import/scale benches.
[[nodiscard]] AppSpec synthetic_scale(std::size_t functions,
                                      std::size_t regions_per_function);

/// All named workloads with their identifiers (bench/example enumeration).
struct NamedWorkload {
  const char* name;
  AppSpec (*factory)();
};
[[nodiscard]] std::vector<NamedWorkload> all_named();

}  // namespace kojak::perf::workloads

#endif  // KOJAK_PERF_WORKLOADS_HPP
