#ifndef KOJAK_PERF_SIMULATOR_HPP
#define KOJAK_PERF_SIMULATOR_HPP

#include <cstdint>

#include "perf/apprentice.hpp"
#include "support/thread_pool.hpp"

namespace kojak::perf {

/// Deterministic parallel-execution simulator: plays the role of the CRAY
/// T3E + Apprentice measurement pipeline the paper's COSY consumed. A
/// (app, nope, seed) triple always produces bit-identical summaries; the
/// per-PE noise streams are hash-derived, so results do not depend on
/// whether PE timelines run pooled or sequentially.
struct SimulationOptions {
  std::uint64_t seed = 1;
  std::int64_t start_time = 941806800;  // 1999-11-05 13:00:00 UTC
  /// PE timelines execute on the pool when set and nope >= 8.
  support::ThreadPool* pool = nullptr;
};

/// Simulates one test run with `nope` processing elements.
[[nodiscard]] RunResult simulate(const AppSpec& app, int nope,
                                 const SimulationOptions& options = {});

/// Simulates a PE sweep and packages structure + runs for import.
[[nodiscard]] ExperimentData simulate_experiment(
    const AppSpec& app, const std::vector<int>& pe_counts,
    const SimulationOptions& options = {});

// --- event traces (EARL-baseline substrate) ---------------------------------

enum class EventKind : std::uint8_t {
  kEnter,
  kExit,
  kSend,
  kRecv,
  kBarrierEnter,
  kBarrierExit,
  kIoBegin,
  kIoEnd,
};

[[nodiscard]] std::string_view to_string(EventKind kind);

/// One event of a per-PE trace, as the EDL/EARL related-work line of the
/// paper would consume. Times are milliseconds from run start.
struct Event {
  double t_ms = 0.0;
  std::uint32_t pe = 0;
  EventKind kind = EventKind::kEnter;
  std::string region;
};

/// Emits a time-ordered event trace consistent with the summary data of the
/// same (app, nope, seed). Trace length scales with the region count and
/// `nope`; the baselines bench uses it to show cost scaling with events.
[[nodiscard]] std::vector<Event> generate_trace(const AppSpec& app, int nope,
                                                std::uint64_t seed = 1);

}  // namespace kojak::perf

#endif  // KOJAK_PERF_SIMULATOR_HPP
