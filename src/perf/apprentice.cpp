#include "perf/apprentice.hpp"

#include "support/stats.hpp"
#include "support/str.hpp"

namespace kojak::perf {

PeStats PeStats::from(const std::vector<double>& per_pe) {
  support::RunningStats stats;
  for (std::size_t p = 0; p < per_pe.size(); ++p) {
    stats.push(per_pe[p], p);
  }
  PeStats out;
  out.min = stats.min();
  out.max = stats.max();
  out.mean = stats.mean();
  out.stddev = stats.stddev_sample();
  out.min_pe = static_cast<std::uint32_t>(stats.min_tag());
  out.max_pe = static_cast<std::uint32_t>(stats.max_tag());
  return out;
}

namespace {

void collect_regions(const RegionSpec& region, const std::string& parent,
                     std::vector<StaticRegion>& out) {
  out.push_back({region.name, region.kind, parent});
  for (const RegionSpec& child : region.children) {
    collect_regions(child, region.name, out);
  }
}

void collect_call_sites(const AppSpec& app, const FunctionSpec& fn,
                        const RegionSpec& region,
                        std::vector<CallSite>& out) {
  if (region.kind == RegionKind::kCall) {
    out.push_back({region.callee, fn.name, region.name});
  }
  if (region.barrier_count > 0) {
    out.push_back({std::string(kBarrierFunction), fn.name, region.name});
  }
  for (const RegionSpec& child : region.children) {
    collect_call_sites(app, fn, child, out);
  }
}

void emit_source(const RegionSpec& region, int depth, std::string& out) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  switch (region.kind) {
    case RegionKind::kLoop:
      out += support::cat(indent, "DO I = 1, N   ! region ", region.name, "\n");
      break;
    case RegionKind::kIfBlock:
      out += support::cat(indent, "IF (MYPE .EQ. 0) THEN   ! region ",
                          region.name, "\n");
      break;
    case RegionKind::kCall:
      out += support::cat(indent, "CALL ", region.callee, "()   ! region ",
                          region.name, "\n");
      break;
    default:
      out += support::cat(indent, "! region ", region.name, "\n");
      break;
  }
  if (region.work_ms > 0) {
    out += support::cat(indent, "  A(I) = B(I) * C(I) + D(I)\n");
  }
  for (const RegionSpec& child : region.children) {
    emit_source(child, depth + 1, out);
  }
  if (region.barrier_count > 0) {
    out += support::cat(indent, "  CALL BARRIER()\n");
  }
  if (region.kind == RegionKind::kLoop) out += indent + "END DO\n";
  if (region.kind == RegionKind::kIfBlock) out += indent + "END IF\n";
}

}  // namespace

ProgramStructure structure_of(const AppSpec& app) {
  validate(app);
  ProgramStructure out;
  out.program_name = app.name;

  bool any_barrier = false;
  const auto scan_barriers = [&](auto&& self, const RegionSpec& region) -> void {
    if (region.barrier_count > 0) any_barrier = true;
    for (const RegionSpec& child : region.children) self(self, child);
  };

  for (const FunctionSpec& fn : app.functions) {
    StaticFunction sf;
    sf.name = fn.name;
    collect_regions(fn.body, "", sf.regions);
    out.functions.push_back(std::move(sf));
    collect_call_sites(app, fn, fn.body, out.call_sites);
    scan_barriers(scan_barriers, fn.body);

    out.source_code += support::cat("      SUBROUTINE ", fn.name, "\n");
    emit_source(fn.body, 3, out.source_code);
    out.source_code += "      END\n\n";
  }

  if (any_barrier) {
    StaticFunction barrier;
    barrier.name = std::string(kBarrierFunction);
    barrier.regions.push_back(
        {std::string(kBarrierFunction), RegionKind::kFunction, ""});
    out.functions.push_back(std::move(barrier));
  }
  return out;
}

}  // namespace kojak::perf
