#include "perf/timing_types.hpp"

namespace kojak::perf {

namespace {

constexpr std::array<std::string_view, kTimingTypeCount> kNames = {
    "Barrier",       "SendMsg",      "RecvMsg",     "BroadcastMsg",
    "ReduceMsg",     "GatherMsg",    "ScatterMsg",  "MsgWait",
    "IORead",        "IOWrite",      "IOOpen",      "IOClose",
    "IOSeek",        "ShmemGet",     "ShmemPut",    "LockAcquire",
    "LockRelease",   "CriticalSection", "Instrumentation", "BufferCopy",
    "MsgPack",       "MsgUnpack",    "CacheMiss",   "PageFault",
    "IdleWait",
};

}  // namespace

std::string_view to_string(TimingType type) {
  return kNames[static_cast<std::size_t>(type)];
}

std::optional<TimingType> parse_timing_type(std::string_view name) {
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (kNames[i] == name) return static_cast<TimingType>(i);
  }
  return std::nullopt;
}

bool is_message_passing(TimingType type) {
  switch (type) {
    case TimingType::kSendMsg:
    case TimingType::kRecvMsg:
    case TimingType::kBroadcastMsg:
    case TimingType::kReduceMsg:
    case TimingType::kGatherMsg:
    case TimingType::kScatterMsg:
    case TimingType::kMsgWait:
    case TimingType::kMsgPack:
    case TimingType::kMsgUnpack:
      return true;
    default:
      return false;
  }
}

bool is_io(TimingType type) {
  switch (type) {
    case TimingType::kIORead:
    case TimingType::kIOWrite:
    case TimingType::kIOOpen:
    case TimingType::kIOClose:
    case TimingType::kIOSeek:
      return true;
    default:
      return false;
  }
}

bool is_synchronization(TimingType type) {
  switch (type) {
    case TimingType::kBarrier:
    case TimingType::kLockAcquire:
    case TimingType::kLockRelease:
    case TimingType::kCriticalSection:
    case TimingType::kIdleWait:
      return true;
    default:
      return false;
  }
}

}  // namespace kojak::perf
