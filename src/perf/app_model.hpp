#ifndef KOJAK_PERF_APP_MODEL_HPP
#define KOJAK_PERF_APP_MODEL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "perf/timing_types.hpp"

namespace kojak::perf {

/// Region kinds of the COSY data model (paper §3: "subprograms, loops,
/// if-blocks, subroutine calls, and arbitrary basic blocks").
enum class RegionKind : std::uint8_t {
  kFunction,
  kLoop,
  kIfBlock,
  kCall,
  kBasicBlock,
};

[[nodiscard]] std::string_view to_string(RegionKind kind);
[[nodiscard]] std::optional<RegionKind> parse_region_kind(std::string_view name);

/// Cost model of one program region in a synthetic SPMD application.
/// All times are milliseconds of one test-run execution.
struct RegionSpec {
  std::string name;             ///< unique within the owning function
  RegionKind kind = RegionKind::kBasicBlock;

  // -- computation ---------------------------------------------------------
  /// Total parallel work; each PE executes work_ms / P (before imbalance).
  double work_ms = 0.0;
  /// Replicated serial work every PE executes in full (Amdahl share).
  double serial_ms = 0.0;
  /// Relative spread of per-PE work: PE p gets a factor in
  /// [1 - imbalance, 1 + imbalance] (linear ramp over PEs).
  double imbalance = 0.0;
  /// Gaussian noise fraction on per-PE compute time (stddev = noise * mean).
  double noise = 0.0;

  // -- communication -------------------------------------------------------
  /// Point-to-point messages per PE (send + matching receive).
  double msgs_per_pe = 0.0;
  double bytes_per_msg = 0.0;
  /// Collectives per PE (charged as Broadcast/Reduce overhead, log2(P) cost).
  double reductions_per_pe = 0.0;
  double broadcasts_per_pe = 0.0;

  // -- synchronization -----------------------------------------------------
  /// Barriers at the end of the region; the wait time of PE p is
  /// (latest arrival - p's arrival) and is recorded both as Barrier typed
  /// overhead and as a call site of the runtime function "barrier".
  int barrier_count = 0;

  // -- I/O -------------------------------------------------------------------
  double io_read_mb = 0.0;
  double io_write_mb = 0.0;
  /// Serialized I/O funnels through PE 0 while others idle-wait.
  bool io_serialized = false;

  // -- structure -------------------------------------------------------------
  /// For kCall regions: name of the callee FunctionSpec (executed inline).
  std::string callee;
  /// Mean invocations per PE of the callee (counts get rounding noise).
  double calls_per_pe = 1.0;

  std::vector<RegionSpec> children;
};

struct FunctionSpec {
  std::string name;
  RegionSpec body;  // body.kind must be kFunction, body.name == name
};

/// Machine parameters of the simulated CRAY T3E-like target.
struct MachineSpec {
  int clockspeed_mhz = 450;
  double msg_latency_us = 12.0;
  double bandwidth_mb_per_s = 300.0;
  double barrier_base_us = 6.0;
  double collective_hop_us = 9.0;       ///< per log2(P) stage
  double instr_overhead_us_per_region = 4.0;
  double io_read_mb_per_s = 60.0;
  double io_write_mb_per_s = 45.0;
};

/// A complete synthetic application: the unit the simulator executes and
/// Apprentice summarizes. Plays the role of the paper's measured Fortran
/// codes on the CRAY T3E.
struct AppSpec {
  std::string name;
  std::string main_function = "main";
  std::vector<FunctionSpec> functions;
  MachineSpec machine;

  [[nodiscard]] const FunctionSpec* find_function(std::string_view fn) const {
    for (const FunctionSpec& f : functions) {
      if (f.name == fn) return &f;
    }
    return nullptr;
  }
};

/// Validates structural invariants (unique names, resolvable callees, no
/// recursion, sane parameters). Throws support::EvalError on violation.
void validate(const AppSpec& app);

}  // namespace kojak::perf

#endif  // KOJAK_PERF_APP_MODEL_HPP
