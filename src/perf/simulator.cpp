#include "perf/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::perf {

using support::EvalError;

namespace {

// --- hash-derived noise ------------------------------------------------------
// Every stochastic quantity is a pure function of (seed, region, pe, draw),
// so results are independent of evaluation order and thread scheduling.

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double unit_uniform(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
}

/// Standard normal via Box-Muller from two derived uniforms.
double unit_normal(std::uint64_t seed, std::uint64_t region,
                   std::uint64_t pe, std::uint64_t draw) {
  const std::uint64_t base = mix64(seed ^ mix64(region * 0x9E3779B97F4A7C15ULL) ^
                                   mix64(pe * 0xC2B2AE3D27D4EB4FULL) ^
                                   mix64(draw * 0x165667B19E3779F9ULL));
  double u1 = unit_uniform(base);
  const double u2 = unit_uniform(mix64(base));
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

/// Linear imbalance ramp: PE p's share factor in [1-imb, 1+imb], mean 1.
double ramp(int pe, int nope, double imbalance) {
  if (nope <= 1) return 1.0;
  const double x = (2.0 * (static_cast<double>(pe) + 0.5) /
                    static_cast<double>(nope)) - 1.0;
  return 1.0 + imbalance * x;
}

struct RegionAcc {
  double excl_sum = 0.0;
  double ovhd_sum = 0.0;
  double incl_sum = 0.0;
  std::array<double, kTimingTypeCount> typed{};
};

class RunSimulator {
 public:
  RunSimulator(const AppSpec& app, const ProgramStructure& structure, int nope,
               const SimulationOptions& options)
      : app_(app), nope_(nope), options_(options) {
    std::size_t index = 0;
    for (const StaticFunction& fn : structure.functions) {
      for (const StaticRegion& region : fn.regions) {
        region_index_[region.name] = index++;
      }
    }
    region_acc_.resize(index);
    call_counts_.resize(structure.call_sites.size(),
                        std::vector<double>(static_cast<std::size_t>(nope), 0.0));
    call_time_.resize(structure.call_sites.size(),
                      std::vector<double>(static_cast<std::size_t>(nope), 0.0));
    for (std::size_t s = 0; s < structure.call_sites.size(); ++s) {
      const CallSite& site = structure.call_sites[s];
      site_index_[support::cat(site.caller, "\x1f", site.calling_region, "\x1f",
                               site.callee)] = s;
    }
  }

  RunResult run() {
    const FunctionSpec* main_fn = app_.find_function(app_.main_function);
    (void)simulate_function(*main_fn);

    RunResult result;
    result.nope = nope_;
    result.clockspeed_mhz = app_.machine.clockspeed_mhz;
    result.start_time = options_.start_time;
    for (const auto& [name, index] : region_index_) {
      const RegionAcc& acc = region_acc_[index];
      if (acc.incl_sum == 0.0 && acc.excl_sum == 0.0) continue;  // never ran
      RegionTiming timing;
      timing.region = name;
      timing.excl_ms = acc.excl_sum;
      timing.incl_ms = acc.incl_sum;
      timing.ovhd_ms = acc.ovhd_sum;
      for (std::size_t t = 0; t < kTimingTypeCount; ++t) {
        if (acc.typed[t] > 0.0) {
          timing.typed_ms.emplace_back(static_cast<TimingType>(t), acc.typed[t]);
        }
      }
      result.regions.push_back(std::move(timing));
    }
    for (std::size_t s = 0; s < call_counts_.size(); ++s) {
      CallSiteTiming timing;
      timing.site_index = s;
      timing.calls = PeStats::from(call_counts_[s]);
      timing.time_ms = PeStats::from(call_time_[s]);
      result.calls.push_back(timing);
    }
    return result;
  }

 private:
  [[nodiscard]] std::size_t region_id(const std::string& name) const {
    return region_index_.at(name);
  }

  /// Per-PE inclusive time and inclusive overhead of a region execution.
  struct PerPe {
    std::vector<double> incl;
    std::vector<double> ovhd;
  };

  PerPe simulate_function(const FunctionSpec& fn) {
    return simulate_region(fn.body, fn.name);
  }

  /// Simulates one region for every PE; returns per-PE inclusive times and
  /// accumulates the run summaries. Overhead is *inclusive* (own typed
  /// overheads plus children's), so MeasuredCost at the program region
  /// captures everything Apprentice measured below it — the paper's
  /// "total costs can be split up into measured and unmeasured costs".
  PerPe simulate_region(const RegionSpec& spec, const std::string& owner_fn) {
    const std::size_t rid = region_id(spec.name);
    const std::size_t P = static_cast<std::size_t>(nope_);
    const MachineSpec& m = app_.machine;

    std::vector<double> excl(P, 0.0);
    std::vector<double> ovhd_nonbarrier(P, 0.0);
    std::array<std::vector<double>, kTimingTypeCount> typed;
    const auto charge = [&](TimingType type, std::size_t pe, double ms) {
      auto& lane = typed[static_cast<std::size_t>(type)];
      if (lane.empty()) lane.assign(P, 0.0);
      lane[pe] += ms;
      ovhd_nonbarrier[pe] += ms;
    };

    const auto per_pe_body = [&](std::size_t pe) {
      const int p = static_cast<int>(pe);
      // Computation: parallel share with imbalance ramp + serial replication.
      double compute = (spec.work_ms / static_cast<double>(nope_)) *
                           ramp(p, nope_, spec.imbalance) +
                       spec.serial_ms;
      if (spec.noise > 0.0) {
        compute *= std::max(0.0, 1.0 + spec.noise *
                                     unit_normal(options_.seed, rid, pe, 0));
      }
      excl[pe] = compute;

      // Point-to-point messages.
      if (spec.msgs_per_pe > 0.0) {
        const double per_msg_ms = m.msg_latency_us / 1000.0 +
                                  spec.bytes_per_msg /
                                      (m.bandwidth_mb_per_s * 1000.0);
        const double total = spec.msgs_per_pe * per_msg_ms;
        charge(TimingType::kSendMsg, pe, 0.50 * total);
        charge(TimingType::kRecvMsg, pe, 0.35 * total);
        charge(TimingType::kMsgWait, pe, 0.09 * total);
        charge(TimingType::kMsgPack, pe, 0.03 * total);
        charge(TimingType::kMsgUnpack, pe, 0.03 * total);
      }
      // Collectives: log2(P) stages.
      const double stages = nope_ > 1 ? std::ceil(std::log2(nope_)) : 0.0;
      if (spec.reductions_per_pe > 0.0 && stages > 0.0) {
        charge(TimingType::kReduceMsg, pe,
               spec.reductions_per_pe * stages * m.collective_hop_us / 1000.0);
      }
      if (spec.broadcasts_per_pe > 0.0 && stages > 0.0) {
        charge(TimingType::kBroadcastMsg, pe,
               spec.broadcasts_per_pe * stages * m.collective_hop_us / 1000.0);
      }
      // I/O.
      const double io_total_ms = spec.io_read_mb / m.io_read_mb_per_s * 1000.0 +
                                 spec.io_write_mb / m.io_write_mb_per_s * 1000.0;
      if (io_total_ms > 0.0) {
        if (spec.io_serialized) {
          if (pe == 0) {
            if (spec.io_read_mb > 0.0) {
              charge(TimingType::kIORead, pe,
                     spec.io_read_mb / m.io_read_mb_per_s * 1000.0);
            }
            if (spec.io_write_mb > 0.0) {
              charge(TimingType::kIOWrite, pe,
                     spec.io_write_mb / m.io_write_mb_per_s * 1000.0);
            }
            charge(TimingType::kIOOpen, pe, 0.05);
            charge(TimingType::kIOClose, pe, 0.04);
            charge(TimingType::kIOSeek, pe, 0.02);
          } else {
            charge(TimingType::kIdleWait, pe, io_total_ms + 0.11);
          }
        } else {
          if (spec.io_read_mb > 0.0) {
            charge(TimingType::kIORead, pe,
                   spec.io_read_mb / m.io_read_mb_per_s * 1000.0 /
                       static_cast<double>(nope_));
          }
          if (spec.io_write_mb > 0.0) {
            charge(TimingType::kIOWrite, pe,
                   spec.io_write_mb / m.io_write_mb_per_s * 1000.0 /
                       static_cast<double>(nope_));
          }
          charge(TimingType::kIOOpen, pe, 0.05);
          charge(TimingType::kIOClose, pe, 0.04);
        }
      }
      // Instrumentation + memory-system texture.
      charge(TimingType::kInstrumentation, pe,
             m.instr_overhead_us_per_region / 1000.0);
      if (compute > 0.0) {
        charge(TimingType::kCacheMiss, pe, 0.015 * compute);
        charge(TimingType::kPageFault, pe, 0.0005 * compute);
      }
    };

    if (options_.pool != nullptr && nope_ >= 16) {
      options_.pool->parallel_for(P, per_pe_body);
    } else {
      for (std::size_t pe = 0; pe < P; ++pe) per_pe_body(pe);
    }

    // Children run inside the region, before its trailing barrier.
    std::vector<double> children_incl(P, 0.0);
    std::vector<double> children_ovhd(P, 0.0);
    for (const RegionSpec& child : spec.children) {
      const PerPe child_result = simulate_region(child, owner_fn);
      for (std::size_t pe = 0; pe < P; ++pe) {
        children_incl[pe] += child_result.incl[pe];
        children_ovhd[pe] += child_result.ovhd[pe];
      }
    }

    // Call region: execute the callee inline; record the call site.
    if (spec.kind == RegionKind::kCall) {
      const FunctionSpec* callee = app_.find_function(spec.callee);
      const PerPe callee_result = simulate_function(*callee);
      const std::size_t site = site_index_.at(
          support::cat(owner_fn, "\x1f", spec.name, "\x1f", spec.callee));
      for (std::size_t pe = 0; pe < P; ++pe) {
        double count = spec.calls_per_pe * ramp(static_cast<int>(pe), nope_,
                                                spec.imbalance);
        if (spec.noise > 0.0) {
          count *= std::max(
              0.0, 1.0 + spec.noise * unit_normal(options_.seed, rid, pe, 7));
        }
        call_counts_[site][pe] += std::max(0.0, std::round(count));
        call_time_[site][pe] += callee_result.incl[pe];
        children_incl[pe] += callee_result.incl[pe];
        children_ovhd[pe] += callee_result.ovhd[pe];
      }
    }

    // Barrier: everyone waits for the slowest arrival.
    std::vector<double> barrier_wait(P, 0.0);
    if (spec.barrier_count > 0) {
      double latest = 0.0;
      std::vector<double> arrival(P, 0.0);
      for (std::size_t pe = 0; pe < P; ++pe) {
        arrival[pe] = excl[pe] + ovhd_nonbarrier[pe] + children_incl[pe];
        latest = std::max(latest, arrival[pe]);
      }
      const double base_ms =
          spec.barrier_count * app_.machine.barrier_base_us / 1000.0;
      for (std::size_t pe = 0; pe < P; ++pe) {
        barrier_wait[pe] = (latest - arrival[pe]) + base_ms;
      }
      const std::size_t site = site_index_.at(
          support::cat(owner_fn, "\x1f", spec.name, "\x1f", kBarrierFunction));
      const std::size_t barrier_rid =
          region_id(std::string(kBarrierFunction));
      RegionAcc& barrier_acc = region_acc_[barrier_rid];
      for (std::size_t pe = 0; pe < P; ++pe) {
        call_counts_[site][pe] += spec.barrier_count;
        call_time_[site][pe] += barrier_wait[pe];
        barrier_acc.incl_sum += barrier_wait[pe];
        barrier_acc.ovhd_sum += barrier_wait[pe];
        barrier_acc.typed[static_cast<std::size_t>(TimingType::kBarrier)] +=
            barrier_wait[pe];
      }
    }

    // Accumulate the region summary and produce per-PE inclusive times.
    RegionAcc& acc = region_acc_[rid];
    PerPe result{std::vector<double>(P, 0.0), std::vector<double>(P, 0.0)};
    for (std::size_t pe = 0; pe < P; ++pe) {
      const double own_ovhd = ovhd_nonbarrier[pe] + barrier_wait[pe];
      result.ovhd[pe] = own_ovhd + children_ovhd[pe];
      result.incl[pe] = excl[pe] + own_ovhd + children_incl[pe];
      acc.excl_sum += excl[pe];
      acc.ovhd_sum += result.ovhd[pe];
      acc.incl_sum += result.incl[pe];
    }
    for (std::size_t t = 0; t < kTimingTypeCount; ++t) {
      if (!typed[t].empty()) {
        for (std::size_t pe = 0; pe < P; ++pe) acc.typed[t] += typed[t][pe];
      }
    }
    if (spec.barrier_count > 0) {
      for (std::size_t pe = 0; pe < P; ++pe) {
        acc.typed[static_cast<std::size_t>(TimingType::kBarrier)] +=
            barrier_wait[pe];
      }
    }
    return result;
  }

  const AppSpec& app_;
  int nope_;
  SimulationOptions options_;
  std::map<std::string, std::size_t> region_index_;
  std::vector<RegionAcc> region_acc_;
  std::map<std::string, std::size_t> site_index_;
  std::vector<std::vector<double>> call_counts_;
  std::vector<std::vector<double>> call_time_;
};

}  // namespace

RunResult simulate(const AppSpec& app, int nope, const SimulationOptions& options) {
  if (nope < 1) throw EvalError("nope must be >= 1");
  const ProgramStructure structure = structure_of(app);
  RunSimulator sim(app, structure, nope, options);
  return sim.run();
}

ExperimentData simulate_experiment(const AppSpec& app,
                                   const std::vector<int>& pe_counts,
                                   const SimulationOptions& options) {
  ExperimentData data;
  data.structure = structure_of(app);
  data.structure.compilation_time = options.start_time - 3600;
  for (std::size_t i = 0; i < pe_counts.size(); ++i) {
    SimulationOptions run_options = options;
    run_options.seed = options.seed + i * 1000003ULL;
    run_options.start_time = options.start_time + static_cast<std::int64_t>(i) * 900;
    data.runs.push_back(simulate(app, pe_counts[i], run_options));
  }
  return data;
}

// --- event traces ------------------------------------------------------------

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kEnter: return "ENTER";
    case EventKind::kExit: return "EXIT";
    case EventKind::kSend: return "SEND";
    case EventKind::kRecv: return "RECV";
    case EventKind::kBarrierEnter: return "BARRIER_ENTER";
    case EventKind::kBarrierExit: return "BARRIER_EXIT";
    case EventKind::kIoBegin: return "IO_BEGIN";
    case EventKind::kIoEnd: return "IO_END";
  }
  return "?";
}

namespace {

void trace_region(const AppSpec& app, const RegionSpec& spec, int nope,
                  std::uint64_t seed, std::size_t rid,
                  std::vector<double>& t_pe, std::vector<Event>& out) {
  const std::size_t P = static_cast<std::size_t>(nope);
  for (std::size_t pe = 0; pe < P; ++pe) {
    out.push_back({t_pe[pe], static_cast<std::uint32_t>(pe), EventKind::kEnter,
                   spec.name});
  }
  for (std::size_t pe = 0; pe < P; ++pe) {
    double compute = (spec.work_ms / nope) *
                         ramp(static_cast<int>(pe), nope, spec.imbalance) +
                     spec.serial_ms;
    if (spec.noise > 0.0) {
      compute *= std::max(0.0, 1.0 + spec.noise *
                                   unit_normal(seed, rid, pe, 0));
    }
    const int msgs = static_cast<int>(spec.msgs_per_pe);
    for (int msg = 0; msg < msgs; ++msg) {
      const double at = t_pe[pe] + compute * (msg + 1.0) / (msgs + 1.0);
      out.push_back({at, static_cast<std::uint32_t>(pe), EventKind::kSend,
                     spec.name});
      out.push_back({at + app.machine.msg_latency_us / 1000.0,
                     static_cast<std::uint32_t>(pe), EventKind::kRecv,
                     spec.name});
    }
    if (spec.io_read_mb + spec.io_write_mb > 0.0) {
      out.push_back({t_pe[pe] + compute, static_cast<std::uint32_t>(pe),
                     EventKind::kIoBegin, spec.name});
      out.push_back({t_pe[pe] + compute + 0.2, static_cast<std::uint32_t>(pe),
                     EventKind::kIoEnd, spec.name});
    }
    t_pe[pe] += compute;
  }
  for (const RegionSpec& child : spec.children) {
    trace_region(app, child, nope, seed, rid * 131 + 7, t_pe, out);
  }
  if (spec.kind == RegionKind::kCall) {
    const FunctionSpec* callee = app.find_function(spec.callee);
    trace_region(app, callee->body, nope, seed, rid * 131 + 13, t_pe, out);
  }
  if (spec.barrier_count > 0) {
    double latest = 0.0;
    for (const double t : t_pe) latest = std::max(latest, t);
    for (std::size_t pe = 0; pe < P; ++pe) {
      out.push_back({t_pe[pe], static_cast<std::uint32_t>(pe),
                     EventKind::kBarrierEnter, spec.name});
      out.push_back({latest, static_cast<std::uint32_t>(pe),
                     EventKind::kBarrierExit, spec.name});
      t_pe[pe] = latest;
    }
  }
  for (std::size_t pe = 0; pe < P; ++pe) {
    out.push_back({t_pe[pe], static_cast<std::uint32_t>(pe), EventKind::kExit,
                   spec.name});
  }
}

}  // namespace

std::vector<Event> generate_trace(const AppSpec& app, int nope,
                                  std::uint64_t seed) {
  validate(app);
  std::vector<Event> out;
  std::vector<double> t_pe(static_cast<std::size_t>(nope), 0.0);
  const FunctionSpec* main_fn = app.find_function(app.main_function);
  trace_region(app, main_fn->body, nope, seed, 1, t_pe, out);
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    return a.t_ms < b.t_ms;
  });
  return out;
}

}  // namespace kojak::perf
