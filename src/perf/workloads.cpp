#include "perf/workloads.hpp"

#include "support/str.hpp"

namespace kojak::perf::workloads {

namespace {

RegionSpec function_body(std::string name) {
  RegionSpec body;
  body.name = std::move(name);
  body.kind = RegionKind::kFunction;
  return body;
}

}  // namespace

AppSpec scalable_stencil() {
  AppSpec app;
  app.name = "stencil2d";

  FunctionSpec main_fn;
  main_fn.name = "main";
  main_fn.body = function_body("main");

  RegionSpec init;
  init.name = "main.init";
  init.kind = RegionKind::kBasicBlock;
  init.work_ms = 40.0;

  RegionSpec loop;
  loop.name = "main.sweep_loop";
  loop.kind = RegionKind::kLoop;

  RegionSpec compute;
  compute.name = "main.sweep_loop.update";
  compute.kind = RegionKind::kBasicBlock;
  compute.work_ms = 1600.0;
  compute.imbalance = 0.01;

  RegionSpec halo;
  halo.name = "main.sweep_loop.halo";
  halo.kind = RegionKind::kBasicBlock;
  halo.msgs_per_pe = 4.0;
  halo.bytes_per_msg = 64.0 * 1024.0;

  loop.children.push_back(std::move(compute));
  loop.children.push_back(std::move(halo));

  main_fn.body.children.push_back(std::move(init));
  main_fn.body.children.push_back(std::move(loop));
  app.functions.push_back(std::move(main_fn));
  return app;
}

AppSpec imbalanced_ocean() {
  AppSpec app;
  app.name = "ocean_sim";

  // Physics kernel invoked from the time loop.
  FunctionSpec physics;
  physics.name = "physics_step";
  physics.body = function_body("physics_step");
  RegionSpec adv;
  adv.name = "physics_step.advect";
  adv.kind = RegionKind::kLoop;
  adv.work_ms = 900.0;
  adv.imbalance = 0.35;  // coastline cells cluster on low-rank PEs
  adv.noise = 0.02;
  RegionSpec diff;
  diff.name = "physics_step.diffuse";
  diff.kind = RegionKind::kLoop;
  diff.work_ms = 500.0;
  diff.imbalance = 0.1;
  physics.body.children.push_back(std::move(adv));
  physics.body.children.push_back(std::move(diff));

  FunctionSpec main_fn;
  main_fn.name = "main";
  main_fn.body = function_body("main");

  RegionSpec init;
  init.name = "main.init";
  init.kind = RegionKind::kBasicBlock;
  init.serial_ms = 20.0;  // replicated grid setup
  init.work_ms = 60.0;
  init.io_read_mb = 1.5;
  init.io_serialized = true;

  RegionSpec loop;
  loop.name = "main.time_loop";
  loop.kind = RegionKind::kLoop;

  // The barrier sits right after the imbalanced physics phase, so its wait
  // time reflects the phase's arrival spread — the LoadImbalance refinement
  // of SyncCost the paper walks through (§4.2).
  RegionSpec step;
  step.name = "main.time_loop.step";
  step.kind = RegionKind::kCall;
  step.callee = "physics_step";
  step.calls_per_pe = 48.0;
  step.barrier_count = 48;

  RegionSpec halo;
  halo.name = "main.time_loop.halo";
  halo.kind = RegionKind::kBasicBlock;
  halo.msgs_per_pe = 96.0;
  halo.bytes_per_msg = 16.0 * 1024.0;

  RegionSpec reduce;
  reduce.name = "main.time_loop.energy_check";
  reduce.kind = RegionKind::kIfBlock;
  reduce.work_ms = 30.0;
  reduce.reductions_per_pe = 48.0;

  loop.children.push_back(std::move(step));
  loop.children.push_back(std::move(halo));
  loop.children.push_back(std::move(reduce));

  RegionSpec checkpoint;
  checkpoint.name = "main.checkpoint";
  checkpoint.kind = RegionKind::kIfBlock;
  checkpoint.io_write_mb = 3.0;
  checkpoint.io_serialized = true;
  checkpoint.barrier_count = 1;

  main_fn.body.children.push_back(std::move(init));
  main_fn.body.children.push_back(std::move(loop));
  main_fn.body.children.push_back(std::move(checkpoint));

  app.functions.push_back(std::move(main_fn));
  app.functions.push_back(std::move(physics));
  return app;
}

AppSpec serial_bottleneck() {
  AppSpec app;
  app.name = "amdahl_demo";

  FunctionSpec main_fn;
  main_fn.name = "main";
  main_fn.body = function_body("main");

  RegionSpec serial;
  serial.name = "main.setup";
  serial.kind = RegionKind::kBasicBlock;
  serial.serial_ms = 400.0;  // replicated on every PE

  RegionSpec parallel;
  parallel.name = "main.solve";
  parallel.kind = RegionKind::kLoop;
  parallel.work_ms = 2000.0;
  parallel.imbalance = 0.02;
  parallel.barrier_count = 4;

  main_fn.body.children.push_back(std::move(serial));
  main_fn.body.children.push_back(std::move(parallel));
  app.functions.push_back(std::move(main_fn));
  return app;
}

AppSpec message_bound() {
  AppSpec app;
  app.name = "latency_bound";

  FunctionSpec main_fn;
  main_fn.name = "main";
  main_fn.body = function_body("main");

  RegionSpec compute;
  compute.name = "main.relax";
  compute.kind = RegionKind::kLoop;
  compute.work_ms = 300.0;

  RegionSpec exchange;
  exchange.name = "main.exchange";
  exchange.kind = RegionKind::kBasicBlock;
  exchange.msgs_per_pe = 4000.0;  // tiny messages, latency dominated
  exchange.bytes_per_msg = 64.0;

  main_fn.body.children.push_back(std::move(compute));
  main_fn.body.children.push_back(std::move(exchange));
  app.functions.push_back(std::move(main_fn));
  return app;
}

AppSpec io_heavy() {
  AppSpec app;
  app.name = "checkpoint_bound";

  FunctionSpec main_fn;
  main_fn.name = "main";
  main_fn.body = function_body("main");

  RegionSpec compute;
  compute.name = "main.simulate";
  compute.kind = RegionKind::kLoop;
  compute.work_ms = 600.0;

  RegionSpec dump;
  dump.name = "main.dump";
  dump.kind = RegionKind::kIfBlock;
  dump.io_write_mb = 96.0;
  dump.io_serialized = true;
  dump.barrier_count = 1;

  main_fn.body.children.push_back(std::move(compute));
  main_fn.body.children.push_back(std::move(dump));
  app.functions.push_back(std::move(main_fn));
  return app;
}

AppSpec synthetic_scale(std::size_t functions, std::size_t regions_per_function) {
  AppSpec app;
  app.name = support::cat("synthetic_", functions, "x", regions_per_function);

  FunctionSpec main_fn;
  main_fn.name = "main";
  main_fn.body = function_body("main");

  for (std::size_t f = 0; f < functions; ++f) {
    const std::string fn_name = support::cat("kernel_", f);
    FunctionSpec fn;
    fn.name = fn_name;
    fn.body = function_body(fn_name);

    RegionSpec loop;
    loop.name = support::cat(fn_name, ".loop");
    loop.kind = RegionKind::kLoop;
    for (std::size_t r = 0; r < regions_per_function; ++r) {
      RegionSpec leaf;
      leaf.name = support::cat(fn_name, ".loop.block_", r);
      leaf.kind = RegionKind::kBasicBlock;
      leaf.work_ms = 2.0 + static_cast<double>((f * 7 + r * 3) % 11);
      leaf.imbalance = 0.05 * static_cast<double>(r % 4);
      if (r % 5 == 0) {
        leaf.msgs_per_pe = 2.0;
        leaf.bytes_per_msg = 4096.0;
      }
      if (r % 7 == 0) leaf.barrier_count = 1;
      loop.children.push_back(std::move(leaf));
    }
    fn.body.children.push_back(std::move(loop));
    app.functions.push_back(std::move(fn));

    RegionSpec call;
    call.name = support::cat("main.call_", f);
    call.kind = RegionKind::kCall;
    call.callee = fn_name;
    call.calls_per_pe = 1.0 + static_cast<double>(f % 3);
    main_fn.body.children.push_back(std::move(call));
  }
  app.functions.insert(app.functions.begin(), std::move(main_fn));
  return app;
}

std::vector<NamedWorkload> all_named() {
  return {
      {"scalable_stencil", &scalable_stencil},
      {"imbalanced_ocean", &imbalanced_ocean},
      {"serial_bottleneck", &serial_bottleneck},
      {"message_bound", &message_bound},
      {"io_heavy", &io_heavy},
  };
}

}  // namespace kojak::perf::workloads
