#include "perf/report_io.hpp"

#include <algorithm>

#include <cstdlib>
#include <sstream>

#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::perf {

using support::ImportError;

namespace {

constexpr std::string_view kMagic = "APPRENTICE REPORT v1";

std::string esc(std::string_view text) {
  // Region and function names never contain spaces in this substrate, but
  // program names may; escape spaces to keep the format whitespace-split.
  std::string out;
  for (const char c : text) {
    if (c == ' ') {
      out += "\\_";
    } else if (c == '\\') {
      out += "\\\\";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unesc(std::string_view text) {
  std::string out;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      out += text[i + 1] == '_' ? ' ' : text[i + 1];
      ++i;
    } else {
      out += text[i];
    }
  }
  return out;
}

void write_pe_stats(std::ostream& out, std::string_view label,
                    const PeStats& stats) {
  out << "    " << label << " min=" << support::format_double(stats.min)
      << " max=" << support::format_double(stats.max)
      << " mean=" << support::format_double(stats.mean)
      << " stdev=" << support::format_double(stats.stddev)
      << " minpe=" << stats.min_pe << " maxpe=" << stats.max_pe << '\n';
}

}  // namespace

void write_report(const ExperimentData& data, std::ostream& out) {
  out << kMagic << '\n';
  out << "PROGRAM " << esc(data.structure.program_name) << '\n';
  out << "COMPILED " << data.structure.compilation_time << '\n';
  out << "SOURCE_LINES "
      << std::count(data.structure.source_code.begin(),
                    data.structure.source_code.end(), '\n')
      << '\n';
  std::istringstream source(data.structure.source_code);
  std::string line;
  while (std::getline(source, line)) out << "| " << line << '\n';

  for (const StaticFunction& fn : data.structure.functions) {
    out << "FUNCTION " << esc(fn.name) << '\n';
    for (const StaticRegion& region : fn.regions) {
      out << "  REGION " << esc(region.name) << " kind=" << to_string(region.kind)
          << " parent=" << (region.parent.empty() ? "-" : esc(region.parent))
          << '\n';
    }
  }
  for (const CallSite& site : data.structure.call_sites) {
    out << "CALLSITE callee=" << esc(site.callee) << " caller=" << esc(site.caller)
        << " region=" << esc(site.calling_region) << '\n';
  }

  for (const RunResult& run : data.runs) {
    out << "RUN nope=" << run.nope << " clockspeed=" << run.clockspeed_mhz
        << " start=" << run.start_time << '\n';
    for (const RegionTiming& region : run.regions) {
      out << "  RTIME " << esc(region.region)
          << " excl=" << support::format_double(region.excl_ms)
          << " incl=" << support::format_double(region.incl_ms)
          << " ovhd=" << support::format_double(region.ovhd_ms) << '\n';
      for (const auto& [type, ms] : region.typed_ms) {
        out << "    TYPED " << to_string(type) << ' '
            << support::format_double(ms) << '\n';
      }
    }
    for (const CallSiteTiming& call : run.calls) {
      out << "  CTIME site=" << call.site_index << '\n';
      write_pe_stats(out, "CALLS", call.calls);
      write_pe_stats(out, "TIME", call.time_ms);
    }
    out << "END RUN\n";
  }
}

std::string write_report(const ExperimentData& data) {
  std::ostringstream out;
  write_report(data, out);
  return out.str();
}

namespace {

class ReportParser {
 public:
  explicit ReportParser(std::string_view text) {
    std::size_t start = 0;
    while (start <= text.size()) {
      std::size_t end = text.find('\n', start);
      if (end == std::string_view::npos) end = text.size();
      lines_.emplace_back(text.substr(start, end - start));
      if (end == text.size()) break;
      start = end + 1;
    }
  }

  ExperimentData parse() {
    if (next_raw() != kMagic) {
      throw error("missing 'APPRENTICE REPORT v1' header");
    }
    ExperimentData data;
    parse_header(data.structure);
    parse_structure(data.structure);
    while (!at_end()) {
      skip_blank();
      if (at_end()) break;
      data.runs.push_back(parse_run(data.structure));
    }
    return data;
  }

 private:
  [[nodiscard]] ImportError error(std::string_view message) const {
    return ImportError(support::cat("report line ", line_no_, ": ", message));
  }

  [[nodiscard]] bool at_end() const { return pos_ >= lines_.size(); }

  std::string_view next_raw() {
    if (at_end()) throw error("unexpected end of report");
    line_no_ = pos_ + 1;
    return lines_[pos_++];
  }

  void skip_blank() {
    while (!at_end()) {
      const std::string_view line = support::trim(lines_[pos_]);
      if (!line.empty() && line[0] != '#') return;
      ++pos_;
    }
  }

  [[nodiscard]] std::string_view peek_line() {
    skip_blank();
    if (at_end()) return {};
    return support::trim(lines_[pos_]);
  }

  std::vector<std::string> next_fields() {
    skip_blank();
    return support::split_ws(next_raw());
  }

  /// Extracts `key=value` from a field; throws when the key does not match.
  static std::string kv(const std::string& field, std::string_view key,
                        const ReportParser& self) {
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos ||
        std::string_view(field).substr(0, eq) != key) {
      throw self.error(support::cat("expected '", key, "=...', got '", field, "'"));
    }
    return field.substr(eq + 1);
  }

  static double to_double(const std::string& text, const ReportParser& self) {
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0') {
      throw self.error(support::cat("malformed number '", text, "'"));
    }
    return v;
  }
  static std::int64_t to_int(const std::string& text, const ReportParser& self) {
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0') {
      throw self.error(support::cat("malformed integer '", text, "'"));
    }
    return v;
  }

  void parse_header(ProgramStructure& structure) {
    auto fields = next_fields();
    if (fields.size() != 2 || fields[0] != "PROGRAM") {
      throw error("expected 'PROGRAM <name>'");
    }
    structure.program_name = unesc(fields[1]);
    fields = next_fields();
    if (fields.size() != 2 || fields[0] != "COMPILED") {
      throw error("expected 'COMPILED <epoch>'");
    }
    structure.compilation_time = to_int(fields[1], *this);
    fields = next_fields();
    if (fields.size() != 2 || fields[0] != "SOURCE_LINES") {
      throw error("expected 'SOURCE_LINES <n>'");
    }
    const std::int64_t n = to_int(fields[1], *this);
    for (std::int64_t i = 0; i < n; ++i) {
      std::string_view raw = next_raw();
      if (!support::starts_with(raw, "| ")) {
        throw error("expected source line starting with '| '");
      }
      structure.source_code += raw.substr(2);
      structure.source_code += '\n';
    }
  }

  void parse_structure(ProgramStructure& structure) {
    while (true) {
      const std::string_view line = peek_line();
      if (support::starts_with(line, "FUNCTION ")) {
        auto fields = next_fields();
        StaticFunction fn;
        fn.name = unesc(fields.at(1));
        while (support::starts_with(peek_line(), "REGION ")) {
          auto rf = next_fields();
          if (rf.size() != 4) throw error("REGION expects name, kind, parent");
          StaticRegion region;
          region.name = unesc(rf[1]);
          const std::string kind_text = kv(rf[2], "kind", *this);
          const auto kind = parse_region_kind(kind_text);
          if (!kind) {
            throw error(support::cat("unknown region kind '", kind_text, "'"));
          }
          region.kind = *kind;
          const std::string parent = kv(rf[3], "parent", *this);
          region.parent = parent == "-" ? "" : unesc(parent);
          fn.regions.push_back(std::move(region));
        }
        structure.functions.push_back(std::move(fn));
      } else if (support::starts_with(line, "CALLSITE ")) {
        auto fields = next_fields();
        if (fields.size() != 4) throw error("CALLSITE expects 3 key=value fields");
        CallSite site;
        site.callee = unesc(kv(fields[1], "callee", *this));
        site.caller = unesc(kv(fields[2], "caller", *this));
        site.calling_region = unesc(kv(fields[3], "region", *this));
        structure.call_sites.push_back(std::move(site));
      } else {
        return;
      }
    }
  }

  PeStats parse_pe_stats(std::string_view label) {
    auto fields = next_fields();
    if (fields.size() != 7 || fields[0] != label) {
      throw error(support::cat("expected '", label, " min=... max=... mean=... "
                               "stdev=... minpe=... maxpe=...'"));
    }
    PeStats stats;
    stats.min = to_double(kv(fields[1], "min", *this), *this);
    stats.max = to_double(kv(fields[2], "max", *this), *this);
    stats.mean = to_double(kv(fields[3], "mean", *this), *this);
    stats.stddev = to_double(kv(fields[4], "stdev", *this), *this);
    stats.min_pe =
        static_cast<std::uint32_t>(to_int(kv(fields[5], "minpe", *this), *this));
    stats.max_pe =
        static_cast<std::uint32_t>(to_int(kv(fields[6], "maxpe", *this), *this));
    return stats;
  }

  RunResult parse_run(const ProgramStructure& structure) {
    auto fields = next_fields();
    if (fields.size() != 4 || fields[0] != "RUN") {
      throw error("expected 'RUN nope=... clockspeed=... start=...'");
    }
    RunResult run;
    run.nope = static_cast<int>(to_int(kv(fields[1], "nope", *this), *this));
    run.clockspeed_mhz =
        static_cast<int>(to_int(kv(fields[2], "clockspeed", *this), *this));
    run.start_time = to_int(kv(fields[3], "start", *this), *this);
    if (run.nope < 1) throw error("RUN nope must be >= 1");

    while (true) {
      const std::string_view line = peek_line();
      if (support::starts_with(line, "RTIME ")) {
        auto rf = next_fields();
        if (rf.size() != 5) throw error("RTIME expects region and 3 timings");
        RegionTiming timing;
        timing.region = unesc(rf[1]);
        timing.excl_ms = to_double(kv(rf[2], "excl", *this), *this);
        timing.incl_ms = to_double(kv(rf[3], "incl", *this), *this);
        timing.ovhd_ms = to_double(kv(rf[4], "ovhd", *this), *this);
        while (support::starts_with(peek_line(), "TYPED ")) {
          auto tf = next_fields();
          if (tf.size() != 3) throw error("TYPED expects type and time");
          const auto type = parse_timing_type(tf[1]);
          if (!type) {
            throw error(support::cat("unknown timing type '", tf[1], "'"));
          }
          timing.typed_ms.emplace_back(*type, to_double(tf[2], *this));
        }
        run.regions.push_back(std::move(timing));
      } else if (support::starts_with(line, "CTIME ")) {
        auto cf = next_fields();
        if (cf.size() != 2) throw error("CTIME expects site=<index>");
        CallSiteTiming call;
        call.site_index =
            static_cast<std::size_t>(to_int(kv(cf[1], "site", *this), *this));
        if (call.site_index >= structure.call_sites.size()) {
          throw error(support::cat("call site index ", call.site_index,
                                   " out of range"));
        }
        call.calls = parse_pe_stats("CALLS");
        call.time_ms = parse_pe_stats("TIME");
        run.calls.push_back(call);
      } else if (line == "END" || support::starts_with(line, "END ")) {
        (void)next_fields();
        return run;
      } else {
        throw error(support::cat("unexpected line inside RUN: '", line, "'"));
      }
    }
  }

  std::vector<std::string_view> lines_;
  std::size_t pos_ = 0;
  std::size_t line_no_ = 0;
};

}  // namespace

ExperimentData parse_report(std::string_view text) {
  return ReportParser(text).parse();
}

}  // namespace kojak::perf
