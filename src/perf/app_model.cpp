#include "perf/app_model.hpp"

#include <set>

#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::perf {

using support::EvalError;

std::string_view to_string(RegionKind kind) {
  switch (kind) {
    case RegionKind::kFunction: return "Function";
    case RegionKind::kLoop: return "Loop";
    case RegionKind::kIfBlock: return "IfBlock";
    case RegionKind::kCall: return "Call";
    case RegionKind::kBasicBlock: return "BasicBlock";
  }
  return "?";
}

std::optional<RegionKind> parse_region_kind(std::string_view name) {
  for (const RegionKind kind :
       {RegionKind::kFunction, RegionKind::kLoop, RegionKind::kIfBlock,
        RegionKind::kCall, RegionKind::kBasicBlock}) {
    if (to_string(kind) == name) return kind;
  }
  return std::nullopt;
}

namespace {

void validate_region(const AppSpec& app, const FunctionSpec& fn,
                     const RegionSpec& region, std::set<std::string>& names,
                     std::set<std::string>& call_stack) {
  if (region.name.empty()) {
    throw EvalError(support::cat("unnamed region in function ", fn.name));
  }
  if (!names.insert(region.name).second) {
    throw EvalError(support::cat("duplicate region name '", region.name,
                                 "' in function ", fn.name));
  }
  if (region.work_ms < 0 || region.serial_ms < 0 || region.imbalance < 0 ||
      region.imbalance > 1 || region.noise < 0 || region.noise > 0.5) {
    throw EvalError(support::cat("region '", region.name,
                                 "': parameters out of range"));
  }
  if (region.kind == RegionKind::kCall) {
    if (region.callee.empty()) {
      throw EvalError(support::cat("call region '", region.name,
                                   "' has no callee"));
    }
    const FunctionSpec* callee = app.find_function(region.callee);
    if (callee == nullptr) {
      throw EvalError(support::cat("call region '", region.name,
                                   "' references unknown function '",
                                   region.callee, "'"));
    }
    if (call_stack.contains(region.callee)) {
      throw EvalError(support::cat("recursive call of '", region.callee,
                                   "' is not supported"));
    }
    call_stack.insert(region.callee);
    std::set<std::string> callee_names;
    validate_region(app, *callee, callee->body, callee_names, call_stack);
    call_stack.erase(region.callee);
  } else if (!region.callee.empty()) {
    throw EvalError(support::cat("region '", region.name,
                                 "' has a callee but is not a Call region"));
  }
  for (const RegionSpec& child : region.children) {
    validate_region(app, fn, child, names, call_stack);
  }
}

}  // namespace

void validate(const AppSpec& app) {
  if (app.functions.empty()) {
    throw EvalError(support::cat("application '", app.name, "' has no functions"));
  }
  std::set<std::string> fn_names;
  for (const FunctionSpec& fn : app.functions) {
    if (!fn_names.insert(fn.name).second) {
      throw EvalError(support::cat("duplicate function '", fn.name, "'"));
    }
    if (fn.body.kind != RegionKind::kFunction) {
      throw EvalError(support::cat("function '", fn.name,
                                   "' body must be a Function region"));
    }
    if (fn.body.name != fn.name) {
      throw EvalError(support::cat("function '", fn.name,
                                   "' body region must carry the function name"));
    }
  }
  if (app.find_function(app.main_function) == nullptr) {
    throw EvalError(support::cat("main function '", app.main_function,
                                 "' not defined"));
  }
  for (const FunctionSpec& fn : app.functions) {
    std::set<std::string> region_names;
    std::set<std::string> call_stack{fn.name};
    validate_region(app, fn, fn.body, region_names, call_stack);
  }
}

}  // namespace kojak::perf
