#ifndef KOJAK_PERF_TIMING_TYPES_HPP
#define KOJAK_PERF_TIMING_TYPES_HPP

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace kojak::perf {

/// The 25 typed-overhead categories of the Apprentice substrate ("Apprentice
/// knows 25 such types", paper §4.1). The ASL data model declares the
/// matching `enum TimingType`; a test pins the two lists together.
enum class TimingType : std::uint8_t {
  kBarrier,
  kSendMsg,
  kRecvMsg,
  kBroadcastMsg,
  kReduceMsg,
  kGatherMsg,
  kScatterMsg,
  kMsgWait,
  kIORead,
  kIOWrite,
  kIOOpen,
  kIOClose,
  kIOSeek,
  kShmemGet,
  kShmemPut,
  kLockAcquire,
  kLockRelease,
  kCriticalSection,
  kInstrumentation,
  kBufferCopy,
  kMsgPack,
  kMsgUnpack,
  kCacheMiss,
  kPageFault,
  kIdleWait,
};

inline constexpr std::size_t kTimingTypeCount = 25;

/// Spelling used in the ASL spec, report files, and the database.
[[nodiscard]] std::string_view to_string(TimingType type);
[[nodiscard]] std::optional<TimingType> parse_timing_type(std::string_view name);

[[nodiscard]] constexpr std::array<TimingType, kTimingTypeCount> all_timing_types() {
  std::array<TimingType, kTimingTypeCount> out{};
  for (std::size_t i = 0; i < kTimingTypeCount; ++i) {
    out[i] = static_cast<TimingType>(i);
  }
  return out;
}

/// Category predicates used by the extended property suite.
[[nodiscard]] bool is_message_passing(TimingType type);
[[nodiscard]] bool is_io(TimingType type);
[[nodiscard]] bool is_synchronization(TimingType type);

}  // namespace kojak::perf

#endif  // KOJAK_PERF_TIMING_TYPES_HPP
