#ifndef KOJAK_ASL_INTERP_HPP
#define KOJAK_ASL_INTERP_HPP

#include <string>
#include <vector>

#include "asl/model.hpp"
#include "asl/object_store.hpp"

namespace kojak::asl {

/// Outcome of evaluating one property in one context (the paper §4:
/// condition -> does the property hold; confidence in [0,1]; severity ranks
/// it; a property whose evaluation hits a data gap — e.g. UNIQUE over an
/// empty set because a region was not measured — is *not applicable*).
struct PropertyResult {
  enum class Status { kHolds, kDoesNotHold, kNotApplicable };

  Status status = Status::kDoesNotHold;
  double confidence = 0.0;
  double severity = 0.0;
  /// Id (or 1-based ordinal rendered as "#k") of the first condition that
  /// held; empty when none did.
  std::string matched_condition;
  /// Explanation when kNotApplicable.
  std::string note;

  [[nodiscard]] bool holds() const noexcept { return status == Status::kHolds; }
};

/// Variable bindings for expression evaluation (parameters, LET bindings,
/// comprehension/aggregate binders).
class Env {
 public:
  void push(std::string name, RtValue value) {
    vars_.emplace_back(std::move(name), std::move(value));
  }
  void pop() { vars_.pop_back(); }

  [[nodiscard]] const RtValue* find(std::string_view name) const {
    for (auto it = vars_.rbegin(); it != vars_.rend(); ++it) {
      if (it->first == name) return &it->second;
    }
    return nullptr;
  }

 private:
  std::vector<std::pair<std::string, RtValue>> vars_;
};

/// Tree-walking evaluator over the object store: the semantic reference
/// implementation of ASL (the SQL-pushdown engine in kojak_cosy must agree
/// with it; tests check this differentially).
class Interpreter {
 public:
  Interpreter(const Model& model, const ObjectStore& store)
      : model_(&model), store_(&store) {}

  /// Evaluates an expression under the given environment.
  [[nodiscard]] RtValue eval(const ast::Expr& expr, Env& env) const;

  /// Calls a specification function with already-evaluated arguments.
  [[nodiscard]] RtValue call(const FunctionInfo& fn,
                             std::vector<RtValue> args) const;

  /// Evaluates a property for a context (argument values in parameter
  /// order). Evaluation errors yield kNotApplicable, not an exception:
  /// a data gap in one region must not abort the whole analysis.
  [[nodiscard]] PropertyResult evaluate_property(const PropertyInfo& prop,
                                                 std::vector<RtValue> args) const;

 private:
  [[nodiscard]] RtValue eval_aggregate(const ast::Expr& expr, Env& env) const;
  [[nodiscard]] static bool truthy(const RtValue& value);

  const Model* model_;
  const ObjectStore* store_;
};

}  // namespace kojak::asl

#endif  // KOJAK_ASL_INTERP_HPP
