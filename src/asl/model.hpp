#ifndef KOJAK_ASL_MODEL_HPP
#define KOJAK_ASL_MODEL_HPP

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "asl/ast.hpp"
#include "asl/types.hpp"

namespace kojak::asl {

struct AttrInfo {
  std::string name;
  Type type;
};

/// A class of the performance data model. `attrs` is flattened: inherited
/// attributes first (ASL has Java-like single inheritance; the COSY model
/// does not use it, but the language supports it).
struct ClassInfo {
  std::string name;
  std::optional<std::uint32_t> base;
  std::vector<AttrInfo> attrs;
  std::size_t own_attr_begin = 0;

  [[nodiscard]] std::optional<std::size_t> find_attr(std::string_view attr) const {
    for (std::size_t i = 0; i < attrs.size(); ++i) {
      if (attrs[i].name == attr) return i;
    }
    return std::nullopt;
  }
};

struct EnumInfo {
  std::string name;
  std::vector<std::string> members;

  [[nodiscard]] std::optional<std::int32_t> find_member(std::string_view m) const {
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i] == m) return static_cast<std::int32_t>(i);
    }
    return std::nullopt;
  }
};

struct FunctionInfo {
  std::string name;
  Type return_type;
  std::vector<std::pair<std::string, Type>> params;
  const ast::Expr* body = nullptr;
};

struct ConstInfo {
  std::string name;
  Type type;
  const ast::Expr* value = nullptr;
};

struct ConditionInfo {
  std::string id;  // empty when unlabelled
  const ast::Expr* pred = nullptr;
};

struct GuardedInfo {
  std::string guard;  // condition id; empty when unguarded
  const ast::Expr* expr = nullptr;
};

struct LetInfo {
  std::string name;
  Type type;
  const ast::Expr* init = nullptr;
};

struct PropertyInfo {
  std::string name;
  std::vector<std::pair<std::string, Type>> params;
  std::vector<LetInfo> lets;
  std::vector<ConditionInfo> conditions;
  std::vector<GuardedInfo> confidence;
  std::vector<GuardedInfo> severity;
};

/// Semantic model of a specification: resolved classes, enums, functions,
/// constants, and properties. Owns the AST it was built from; all AST
/// pointers in the info structs point into it.
class Model {
 public:
  Model() = default;

  [[nodiscard]] const std::vector<ClassInfo>& classes() const noexcept {
    return classes_;
  }
  [[nodiscard]] const std::vector<EnumInfo>& enums() const noexcept {
    return enums_;
  }
  [[nodiscard]] const std::vector<FunctionInfo>& functions() const noexcept {
    return functions_;
  }
  [[nodiscard]] const std::vector<ConstInfo>& constants() const noexcept {
    return constants_;
  }
  [[nodiscard]] const std::vector<PropertyInfo>& properties() const noexcept {
    return properties_;
  }

  [[nodiscard]] std::optional<std::uint32_t> find_class(std::string_view name) const;
  [[nodiscard]] std::optional<std::uint32_t> find_enum(std::string_view name) const;
  [[nodiscard]] const FunctionInfo* find_function(std::string_view name) const;
  [[nodiscard]] const ConstInfo* find_constant(std::string_view name) const;
  [[nodiscard]] const PropertyInfo* find_property(std::string_view name) const;
  /// Global enum-member lookup (members are unqualified, as in `== Barrier`).
  [[nodiscard]] std::optional<std::pair<std::uint32_t, std::int32_t>>
  find_enum_member(std::string_view name) const;

  [[nodiscard]] const ClassInfo& class_info(std::uint32_t id) const {
    return classes_.at(id);
  }
  [[nodiscard]] const EnumInfo& enum_info(std::uint32_t id) const {
    return enums_.at(id);
  }

  /// True when `derived` equals `base` or transitively extends it.
  [[nodiscard]] bool is_subclass_of(std::uint32_t derived, std::uint32_t base) const;

  /// Human-readable type name (for diagnostics and schema generation).
  [[nodiscard]] std::string type_name(const Type& type) const;

  /// Content hash of the analyzed specification (classes, enums, constants,
  /// functions, properties — including expression bodies). Two models
  /// loaded from the same documents hash equal; any edit to a spec changes
  /// the value. Caches keyed on model content (e.g. the compiled-plan cache
  /// of the SQL evaluator) use this as their fingerprint.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  friend class SemaBuilder;

  std::shared_ptr<const ast::SpecFile> spec_;
  std::vector<ClassInfo> classes_;
  std::vector<EnumInfo> enums_;
  std::vector<FunctionInfo> functions_;
  std::vector<ConstInfo> constants_;
  std::vector<PropertyInfo> properties_;
  std::map<std::string, std::uint32_t, std::less<>> class_by_name_;
  std::map<std::string, std::uint32_t, std::less<>> enum_by_name_;
};

}  // namespace kojak::asl

#endif  // KOJAK_ASL_MODEL_HPP
