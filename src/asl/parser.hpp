#ifndef KOJAK_ASL_PARSER_HPP
#define KOJAK_ASL_PARSER_HPP

#include <string_view>

#include "asl/ast.hpp"
#include "support/diagnostics.hpp"

namespace kojak::asl {

struct ParseResult {
  ast::SpecFile spec;
  support::DiagnosticEngine diags;

  [[nodiscard]] bool ok() const noexcept { return !diags.has_errors(); }
};

/// Parses an ASL specification (data-model and/or property sections).
/// Recovers at declaration boundaries, so one malformed property does not
/// hide errors in the rest of the document — the paper's workflow edits
/// specs by hand, which makes multi-error reporting matter.
[[nodiscard]] ParseResult parse_spec(std::string_view source);

/// Convenience wrapper: throws support::ParseError with all rendered
/// diagnostics when the source has any syntax error.
[[nodiscard]] ast::SpecFile parse_spec_or_throw(std::string_view source);

}  // namespace kojak::asl

#endif  // KOJAK_ASL_PARSER_HPP
