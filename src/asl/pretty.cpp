#include "asl/pretty.hpp"

#include <sstream>

#include "support/str.hpp"

namespace kojak::asl {

using ast::Expr;

namespace {

void print_expr(const Expr& e, std::ostringstream& out);

void print_binary(const Expr& e, std::ostringstream& out) {
  out << '(';
  print_expr(*e.lhs, out);
  out << ' ' << ast::to_string(e.bin_op) << ' ';
  print_expr(*e.rhs, out);
  out << ')';
}

void print_expr(const Expr& e, std::ostringstream& out) {
  using Kind = Expr::Kind;
  switch (e.kind) {
    case Kind::kIntLit:
      out << e.int_value;
      return;
    case Kind::kFloatLit: {
      std::string text = support::format_double(e.float_value);
      if (text.find_first_of(".eE") == std::string::npos) text += ".0";
      out << text;
      return;
    }
    case Kind::kBoolLit:
      out << (e.bool_value ? "true" : "false");
      return;
    case Kind::kStringLit: {
      out << '"';
      for (const char c : e.string_value) {
        switch (c) {
          case '"': out << "\\\""; break;
          case '\\': out << "\\\\"; break;
          case '\n': out << "\\n"; break;
          case '\t': out << "\\t"; break;
          default: out << c; break;
        }
      }
      out << '"';
      return;
    }
    case Kind::kNullLit:
      out << "null";
      return;
    case Kind::kIdent:
      out << e.name;
      return;
    case Kind::kMember:
      print_expr(*e.base, out);
      out << '.' << e.name;
      return;
    case Kind::kCall: {
      out << e.name << '(';
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out << ", ";
        print_expr(*e.args[i], out);
      }
      out << ')';
      return;
    }
    case Kind::kUnary:
      if (e.un_op == ast::UnOp::kNot) {
        out << "NOT ";
      } else {
        out << '-';
      }
      out << '(';
      print_expr(*e.lhs, out);
      out << ')';
      return;
    case Kind::kBinary:
      print_binary(e, out);
      return;
    case Kind::kComprehension:
      out << '{' << e.name << " IN ";
      print_expr(*e.base, out);
      if (e.filter) {
        out << " WITH ";
        print_expr(*e.filter, out);
      }
      out << '}';
      return;
    case Kind::kAggregate:
      out << ast::to_string(e.agg_kind) << '(';
      print_expr(*e.agg_value, out);
      if (e.base) {
        out << " WHERE " << e.name << " IN ";
        print_expr(*e.base, out);
        if (e.filter) {
          out << " AND ";
          print_expr(*e.filter, out);
        }
      }
      out << ')';
      return;
    case Kind::kUnique:
      out << "UNIQUE(";
      print_expr(*e.base, out);
      out << ')';
      return;
    case Kind::kExists:
      out << "EXISTS(";
      print_expr(*e.base, out);
      out << ')';
      return;
    case Kind::kSize:
      out << "SIZE(";
      print_expr(*e.base, out);
      out << ')';
      return;
  }
}

void print_params(const std::vector<ast::ParamDecl>& params,
                  std::ostringstream& out) {
  out << '(';
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i > 0) out << ", ";
    out << params[i].type.to_string() << ' ' << params[i].name;
  }
  out << ')';
}

void print_guarded_list(const std::vector<ast::GuardedExpr>& arms, bool is_max,
                        std::ostringstream& out) {
  if (is_max) {
    out << "MAX(";
    for (std::size_t i = 0; i < arms.size(); ++i) {
      if (i > 0) out << ", ";
      if (!arms[i].guard.empty()) out << '(' << arms[i].guard << ") -> ";
      print_expr(*arms[i].expr, out);
    }
    out << ')';
    return;
  }
  const ast::GuardedExpr& arm = arms.front();
  if (!arm.guard.empty()) out << '(' << arm.guard << ") -> ";
  print_expr(*arm.expr, out);
}

}  // namespace

std::string to_source(const Expr& expr) {
  std::ostringstream out;
  print_expr(expr, out);
  return out.str();
}

std::string to_source(const ast::SpecFile& spec) {
  std::ostringstream out;
  for (const auto& en : spec.enums) {
    out << "enum " << en.name << " {\n  "
        << support::join(en.members, ",\n  ") << "\n};\n\n";
  }
  for (const auto& cls : spec.classes) {
    out << "class " << cls.name;
    if (!cls.base.empty()) out << " extends " << cls.base;
    out << " {\n";
    for (const auto& attr : cls.attrs) {
      out << "  " << attr.type.to_string() << ' ' << attr.name << ";\n";
    }
    out << "}\n\n";
  }
  for (const auto& cst : spec.constants) {
    out << "const " << cst.type.to_string() << ' ' << cst.name << " = ";
    print_expr(*cst.value, out);
    out << ";\n\n";
  }
  for (const auto& fn : spec.functions) {
    out << fn.return_type.to_string() << ' ' << fn.name;
    print_params(fn.params, out);
    out << " =\n  ";
    print_expr(*fn.body, out);
    out << ";\n\n";
  }
  for (const auto& prop : spec.properties) {
    out << "Property " << prop.name;
    print_params(prop.params, out);
    out << " {\n";
    if (!prop.lets.empty()) {
      out << "  LET\n";
      for (const auto& let : prop.lets) {
        out << "    " << let.type.to_string() << ' ' << let.name << " = ";
        print_expr(*let.init, out);
        out << ";\n";
      }
      out << "  IN\n";
    }
    out << "  CONDITION: ";
    for (std::size_t i = 0; i < prop.conditions.size(); ++i) {
      if (i > 0) out << " OR ";
      if (!prop.conditions[i].id.empty()) {
        out << '(' << prop.conditions[i].id << ") ";
      }
      print_expr(*prop.conditions[i].pred, out);
    }
    out << ";\n  CONFIDENCE: ";
    print_guarded_list(prop.confidence, prop.confidence_is_max, out);
    out << ";\n  SEVERITY: ";
    print_guarded_list(prop.severity, prop.severity_is_max, out);
    out << ";\n};\n\n";
  }
  return out.str();
}

}  // namespace kojak::asl
