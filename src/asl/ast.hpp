#ifndef KOJAK_ASL_AST_HPP
#define KOJAK_ASL_AST_HPP

#include <memory>
#include <string>
#include <vector>

#include "support/source_location.hpp"

namespace kojak::asl::ast {

// ---------------------------------------------------------------------------
// Expressions

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};
enum class UnOp : std::uint8_t { kNeg, kNot };

/// Builtin aggregate kinds of the WHERE-binder form:
///   MIN(s.Run.NoPe WHERE s IN r.TotTimes [AND pred ...])
enum class AggKind : std::uint8_t { kMin, kMax, kSum, kAvg, kCount };

[[nodiscard]] std::string_view to_string(BinOp op);
[[nodiscard]] std::string_view to_string(AggKind kind);

struct Expr {
  enum class Kind : std::uint8_t {
    kIntLit,
    kFloatLit,
    kBoolLit,
    kStringLit,
    kNullLit,
    kIdent,          // parameter, LET binding, enum member, or constant
    kMember,         // base.attr
    kCall,           // user-defined specification function
    kUnary,
    kBinary,
    kComprehension,  // { binder IN set WITH pred }
    kAggregate,      // AGG(value WHERE binder IN set [AND pred]) — binder form
    kUnique,         // UNIQUE(set)
    kExists,         // EXISTS(set)
    kSize,           // SIZE(set) / COUNT(set)
  };

  Kind kind = Kind::kNullLit;
  support::SourceLoc loc;

  std::int64_t int_value = 0;
  double float_value = 0.0;
  bool bool_value = false;
  std::string string_value;

  std::string name;   // kIdent / kMember attr / kCall callee / binder name
  ExprPtr base;       // kMember base; kComprehension/kAggregate set; kUnique/kExists/kSize arg
  ExprPtr lhs;
  ExprPtr rhs;
  std::vector<ExprPtr> args;  // kCall arguments

  UnOp un_op = UnOp::kNeg;
  BinOp bin_op = BinOp::kAdd;

  AggKind agg_kind = AggKind::kMin;
  ExprPtr agg_value;  // value expression of the aggregate (null for COUNT form)
  ExprPtr filter;     // WITH predicate / aggregate AND-filter (may be null)

  [[nodiscard]] ExprPtr clone() const;
};

[[nodiscard]] ExprPtr make_expr(Expr::Kind kind, support::SourceLoc loc);

// ---------------------------------------------------------------------------
// Declarations

/// A syntactic type name: `int`, `float`, `bool`, `String`, `DateTime`,
/// a class/enum name, or `setof <name>`.
struct TypeName {
  std::string name;
  bool is_set = false;
  support::SourceLoc loc;

  [[nodiscard]] std::string to_string() const {
    return is_set ? "setof " + name : name;
  }
};

struct AttrDecl {
  TypeName type;
  std::string name;
  support::SourceLoc loc;
};

struct ClassDecl {
  std::string name;
  std::string base;  // empty when the class has no superclass
  std::vector<AttrDecl> attrs;
  support::SourceLoc loc;
};

struct EnumDecl {
  std::string name;
  std::vector<std::string> members;
  support::SourceLoc loc;
};

struct ParamDecl {
  TypeName type;
  std::string name;
  support::SourceLoc loc;
};

/// Specification function: `float Duration(Region r, TestRun t) = expr;`
struct FunctionDecl {
  TypeName return_type;
  std::string name;
  std::vector<ParamDecl> params;
  ExprPtr body;
  support::SourceLoc loc;
};

/// Tool- or user-defined constant: `const float ImbalanceThreshold = 0.25;`
struct ConstDecl {
  TypeName type;
  std::string name;
  ExprPtr value;
  support::SourceLoc loc;
};

struct LetDef {
  TypeName type;
  std::string name;
  ExprPtr init;
  support::SourceLoc loc;
};

/// One condition of a property, optionally labelled: `(c1) expr`.
struct Condition {
  std::string id;  // empty when unlabelled
  ExprPtr pred;
  support::SourceLoc loc;
};

/// One confidence/severity arm, optionally guarded: `(c1) -> expr`.
struct GuardedExpr {
  std::string guard;  // condition id; empty when unguarded
  ExprPtr expr;
  support::SourceLoc loc;
};

struct PropertyDecl {
  std::string name;
  std::vector<ParamDecl> params;
  std::vector<LetDef> lets;
  std::vector<Condition> conditions;      // joined by OR (Figure 1)
  std::vector<GuardedExpr> confidence;    // singleton unless spec-level MAX
  bool confidence_is_max = false;
  std::vector<GuardedExpr> severity;
  bool severity_is_max = false;
  support::SourceLoc loc;
};

/// A parsed specification document (data model and/or property sections).
struct SpecFile {
  std::vector<ClassDecl> classes;
  std::vector<EnumDecl> enums;
  std::vector<FunctionDecl> functions;
  std::vector<ConstDecl> constants;
  std::vector<PropertyDecl> properties;
};

}  // namespace kojak::asl::ast

#endif  // KOJAK_ASL_AST_HPP
