#include "asl/interp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::asl {

using ast::Expr;
using support::EvalError;

namespace {

RtValue numeric_result(double value, bool as_int) {
  if (as_int) return RtValue::of_int(static_cast<std::int64_t>(value));
  return RtValue::of_float(value);
}

int compare_ordered(const RtValue& a, const RtValue& b) {
  if (a.is_numeric() && b.is_numeric()) {
    const double x = a.as_float();
    const double y = b.as_float();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.is_string() && b.is_string()) {
    const int c = a.as_string().compare(b.as_string());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  throw EvalError(support::cat("cannot order ", a.to_display(), " and ",
                               b.to_display()));
}

}  // namespace

bool Interpreter::truthy(const RtValue& value) { return value.as_bool(); }

RtValue Interpreter::call(const FunctionInfo& fn, std::vector<RtValue> args) const {
  if (args.size() != fn.params.size()) {
    throw EvalError(support::cat("function ", fn.name, " expects ",
                                 fn.params.size(), " arguments, got ",
                                 args.size()));
  }
  Env env;
  for (std::size_t i = 0; i < args.size(); ++i) {
    env.push(fn.params[i].first, std::move(args[i]));
  }
  return eval(*fn.body, env);
}

RtValue Interpreter::eval_aggregate(const Expr& e, Env& env) const {
  // Identity form: MAX(scalar) — the degenerate list-MAX over one value.
  if (!e.base) return eval(*e.agg_value, env);

  const RtValue set_value = eval(*e.base, env);
  const std::vector<ObjectId>& members = set_value.as_set();

  double sum = 0.0;
  double best = 0.0;
  std::int64_t best_int = 0;
  bool best_is_int = false;
  std::size_t count = 0;
  bool first = true;

  for (const ObjectId member : members) {
    env.push(e.name, RtValue::of_object(member));
    bool keep = true;
    if (e.filter) keep = truthy(eval(*e.filter, env));
    if (keep) {
      if (e.agg_kind == ast::AggKind::kCount) {
        ++count;
      } else {
        const RtValue v = eval(*e.agg_value, env);
        const double x = v.as_float();
        sum += x;
        ++count;
        const bool better = first || (e.agg_kind == ast::AggKind::kMin
                                          ? x < best
                                          : x > best);
        if ((e.agg_kind == ast::AggKind::kMin ||
             e.agg_kind == ast::AggKind::kMax) &&
            better) {
          best = x;
          best_int = v.is_int() ? v.as_int() : 0;
          best_is_int = v.is_int();
        }
        first = false;
      }
    }
    env.pop();
  }

  switch (e.agg_kind) {
    case ast::AggKind::kCount:
      return RtValue::of_int(static_cast<std::int64_t>(count));
    case ast::AggKind::kSum:
      return RtValue::of_float(sum);
    case ast::AggKind::kAvg:
      if (count == 0) throw EvalError("AVG over an empty set");
      return RtValue::of_float(sum / static_cast<double>(count));
    case ast::AggKind::kMin:
    case ast::AggKind::kMax:
      if (count == 0) {
        throw EvalError(support::cat(ast::to_string(e.agg_kind),
                                     " over an empty set"));
      }
      return best_is_int ? RtValue::of_int(best_int) : RtValue::of_float(best);
  }
  throw EvalError("unknown aggregate kind");
}

RtValue Interpreter::eval(const Expr& e, Env& env) const {
  using Kind = Expr::Kind;
  switch (e.kind) {
    case Kind::kIntLit: return RtValue::of_int(e.int_value);
    case Kind::kFloatLit: return RtValue::of_float(e.float_value);
    case Kind::kBoolLit: return RtValue::of_bool(e.bool_value);
    case Kind::kStringLit: return RtValue::of_string(e.string_value);
    case Kind::kNullLit: return RtValue::null();

    case Kind::kIdent: {
      if (const RtValue* var = env.find(e.name)) return *var;
      if (const ConstInfo* cst = model_->find_constant(e.name)) {
        Env empty;
        return eval(*cst->value, empty);
      }
      if (const auto member = model_->find_enum_member(e.name)) {
        return RtValue::of_enum(member->first, member->second);
      }
      throw EvalError(support::cat("unknown name '", e.name, "'"));
    }

    case Kind::kMember: {
      const RtValue base = eval(*e.base, env);
      const ObjectId id = base.as_object();
      if (id == kNullObject) {
        throw EvalError(support::cat("attribute access '.", e.name,
                                     "' on null object"));
      }
      const Object& obj = store_->object(id);
      const ClassInfo& cls = model_->class_info(obj.class_id);
      const auto index = cls.find_attr(e.name);
      if (!index) {
        throw EvalError(support::cat("class ", cls.name, " has no attribute '",
                                     e.name, "'"));
      }
      const RtValue& value = obj.attrs[*index];
      // A never-populated setof attribute reads as the empty set.
      if (value.is_null() && cls.attrs[*index].type.kind == TypeKind::kSet) {
        static const SetPtr kEmpty = std::make_shared<std::vector<ObjectId>>();
        return RtValue::of_set(kEmpty);
      }
      return value;
    }

    case Kind::kCall: {
      const FunctionInfo* fn = model_->find_function(e.name);
      if (fn == nullptr) {
        throw EvalError(support::cat("unknown function '", e.name, "'"));
      }
      std::vector<RtValue> args;
      args.reserve(e.args.size());
      for (const auto& arg : e.args) args.push_back(eval(*arg, env));
      return call(*fn, std::move(args));
    }

    case Kind::kUnary: {
      const RtValue operand = eval(*e.lhs, env);
      if (e.un_op == ast::UnOp::kNot) return RtValue::of_bool(!operand.as_bool());
      if (operand.is_int()) return RtValue::of_int(-operand.as_int());
      return RtValue::of_float(-operand.as_float());
    }

    case Kind::kBinary: {
      using ast::BinOp;
      switch (e.bin_op) {
        case BinOp::kAnd: {
          const RtValue lhs = eval(*e.lhs, env);
          if (!lhs.as_bool()) return RtValue::of_bool(false);
          return RtValue::of_bool(eval(*e.rhs, env).as_bool());
        }
        case BinOp::kOr: {
          const RtValue lhs = eval(*e.lhs, env);
          if (lhs.as_bool()) return RtValue::of_bool(true);
          return RtValue::of_bool(eval(*e.rhs, env).as_bool());
        }
        case BinOp::kAdd:
        case BinOp::kSub:
        case BinOp::kMul: {
          const RtValue lhs = eval(*e.lhs, env);
          const RtValue rhs = eval(*e.rhs, env);
          const bool as_int = lhs.is_int() && rhs.is_int();
          const double x = lhs.as_float();
          const double y = rhs.as_float();
          switch (e.bin_op) {
            case BinOp::kAdd: return numeric_result(x + y, as_int);
            case BinOp::kSub: return numeric_result(x - y, as_int);
            default: return numeric_result(x * y, as_int);
          }
        }
        case BinOp::kDiv: {
          const double x = eval(*e.lhs, env).as_float();
          const double y = eval(*e.rhs, env).as_float();
          if (y == 0.0) throw EvalError("division by zero");
          return RtValue::of_float(x / y);
        }
        case BinOp::kEq:
          return RtValue::of_bool(
              RtValue::equals(eval(*e.lhs, env), eval(*e.rhs, env)));
        case BinOp::kNe:
          return RtValue::of_bool(
              !RtValue::equals(eval(*e.lhs, env), eval(*e.rhs, env)));
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe: {
          const int c = compare_ordered(eval(*e.lhs, env), eval(*e.rhs, env));
          switch (e.bin_op) {
            case BinOp::kLt: return RtValue::of_bool(c < 0);
            case BinOp::kLe: return RtValue::of_bool(c <= 0);
            case BinOp::kGt: return RtValue::of_bool(c > 0);
            default: return RtValue::of_bool(c >= 0);
          }
        }
      }
      throw EvalError("unknown binary operator");
    }

    case Kind::kComprehension: {
      const RtValue set_value = eval(*e.base, env);
      const std::vector<ObjectId>& members = set_value.as_set();
      auto result = std::make_shared<std::vector<ObjectId>>();
      result->reserve(members.size());
      for (const ObjectId member : members) {
        bool keep = true;
        if (e.filter) {
          env.push(e.name, RtValue::of_object(member));
          keep = truthy(eval(*e.filter, env));
          env.pop();
        }
        if (keep) result->push_back(member);
      }
      return RtValue::of_set(std::move(result));
    }

    case Kind::kAggregate:
      return eval_aggregate(e, env);

    case Kind::kUnique: {
      const RtValue set_value = eval(*e.base, env);
      const std::vector<ObjectId>& members = set_value.as_set();
      if (members.size() != 1) {
        throw EvalError(support::cat("UNIQUE over a set of size ",
                                     members.size()));
      }
      return RtValue::of_object(members.front());
    }

    case Kind::kExists: {
      const RtValue set_value = eval(*e.base, env);
      return RtValue::of_bool(!set_value.as_set().empty());
    }

    case Kind::kSize: {
      const RtValue set_value = eval(*e.base, env);
      return RtValue::of_int(
          static_cast<std::int64_t>(set_value.as_set().size()));
    }
  }
  throw EvalError("unhandled expression kind");
}

PropertyResult Interpreter::evaluate_property(const PropertyInfo& prop,
                                              std::vector<RtValue> args) const {
  PropertyResult result;
  if (args.size() != prop.params.size()) {
    throw EvalError(support::cat("property ", prop.name, " expects ",
                                 prop.params.size(), " arguments, got ",
                                 args.size()));
  }
  Env env;
  for (std::size_t i = 0; i < args.size(); ++i) {
    env.push(prop.params[i].first, std::move(args[i]));
  }

  try {
    for (const LetInfo& let : prop.lets) {
      env.push(let.name, eval(*let.init, env));
    }

    // Conditions: OR-combined; remember which held for guarded arms.
    std::vector<std::pair<std::string, bool>> truth;
    bool holds = false;
    for (std::size_t i = 0; i < prop.conditions.size(); ++i) {
      const ConditionInfo& cond = prop.conditions[i];
      const bool value = truthy(eval(*cond.pred, env));
      truth.emplace_back(cond.id, value);
      if (value && !holds) {
        holds = true;
        result.matched_condition =
            cond.id.empty() ? support::cat("#", i + 1) : cond.id;
      }
    }
    if (!holds) {
      result.status = PropertyResult::Status::kDoesNotHold;
      return result;
    }
    result.status = PropertyResult::Status::kHolds;

    const auto held = [&](const std::string& guard) {
      for (const auto& [id, value] : truth) {
        if (id == guard) return value;
      }
      return false;
    };
    const auto eval_arms = [&](const std::vector<GuardedInfo>& arms) {
      double best = -std::numeric_limits<double>::infinity();
      bool any = false;
      for (const GuardedInfo& arm : arms) {
        if (!arm.guard.empty() && !held(arm.guard)) continue;
        best = std::max(best, eval(*arm.expr, env).as_float());
        any = true;
      }
      return any ? best : 0.0;
    };

    result.confidence = std::clamp(eval_arms(prop.confidence), 0.0, 1.0);
    result.severity = eval_arms(prop.severity);
  } catch (const EvalError& error) {
    result = PropertyResult{};
    result.status = PropertyResult::Status::kNotApplicable;
    result.note = error.what();
  }
  return result;
}

}  // namespace kojak::asl
