#include "asl/sema.hpp"

#include <set>

#include "asl/pretty.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::asl {

using support::SemaError;
using support::SourceLoc;

// ---------------------------------------------------------------------------
// Model lookups

std::optional<std::uint32_t> Model::find_class(std::string_view name) const {
  const auto it = class_by_name_.find(name);
  if (it == class_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint32_t> Model::find_enum(std::string_view name) const {
  const auto it = enum_by_name_.find(name);
  if (it == enum_by_name_.end()) return std::nullopt;
  return it->second;
}

const FunctionInfo* Model::find_function(std::string_view name) const {
  for (const FunctionInfo& fn : functions_) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

const ConstInfo* Model::find_constant(std::string_view name) const {
  for (const ConstInfo& c : constants_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const PropertyInfo* Model::find_property(std::string_view name) const {
  for (const PropertyInfo& p : properties_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::optional<std::pair<std::uint32_t, std::int32_t>> Model::find_enum_member(
    std::string_view name) const {
  for (std::uint32_t e = 0; e < enums_.size(); ++e) {
    if (const auto ordinal = enums_[e].find_member(name)) {
      return std::make_pair(e, *ordinal);
    }
  }
  return std::nullopt;
}

bool Model::is_subclass_of(std::uint32_t derived, std::uint32_t base) const {
  while (true) {
    if (derived == base) return true;
    const auto& info = classes_.at(derived);
    if (!info.base) return false;
    derived = *info.base;
  }
}

std::uint64_t Model::fingerprint() const {
  // FNV-1a over a canonical rendering of everything the evaluators consult.
  std::uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](std::string_view text) {
    for (const char c : text) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
    hash ^= 0xff;
    hash *= 1099511628211ull;
  };
  // Every record opens with a tag so flat name sequences cannot collide
  // across section boundaries (e.g. one enum {a, F, b} vs. two enums).
  for (const ClassInfo& cls : classes_) {
    mix("class");
    mix(cls.name);
    for (const AttrInfo& attr : cls.attrs) {
      mix(attr.name);
      mix(type_name(attr.type));
    }
  }
  for (const EnumInfo& e : enums_) {
    mix("enum");
    mix(e.name);
    for (const std::string& member : e.members) mix(member);
  }
  for (const ConstInfo& c : constants_) {
    mix("const");
    mix(c.name);
    mix(to_source(*c.value));
  }
  for (const FunctionInfo& fn : functions_) {
    mix("function");
    mix(fn.name);
    for (const auto& [name, type] : fn.params) {
      mix(name);
      mix(type_name(type));
    }
    mix(to_source(*fn.body));
  }
  for (const PropertyInfo& prop : properties_) {
    mix("property");
    mix(prop.name);
    for (const auto& [name, type] : prop.params) {
      mix(name);
      mix(type_name(type));
    }
    for (const LetInfo& let : prop.lets) {
      mix(let.name);
      mix(to_source(*let.init));
    }
    for (const ConditionInfo& cond : prop.conditions) {
      mix(cond.id);
      mix(to_source(*cond.pred));
    }
    for (const auto* arms : {&prop.confidence, &prop.severity}) {
      for (const GuardedInfo& arm : *arms) {
        mix(arm.guard);
        mix(to_source(*arm.expr));
      }
    }
  }
  return hash;
}

std::string Model::type_name(const Type& type) const {
  switch (type.kind) {
    case TypeKind::kError: return "<error>";
    case TypeKind::kInt: return "int";
    case TypeKind::kFloat: return "float";
    case TypeKind::kBool: return "bool";
    case TypeKind::kString: return "String";
    case TypeKind::kDateTime: return "DateTime";
    case TypeKind::kClass: return classes_.at(type.id).name;
    case TypeKind::kEnum: return enums_.at(type.id).name;
    case TypeKind::kSet: return "setof " + classes_.at(type.id).name;
    case TypeKind::kNullRef: return "null";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Semantic analysis

namespace {

struct Scope {
  std::vector<std::pair<std::string, Type>> vars;

  [[nodiscard]] const Type* find(std::string_view name) const {
    for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
      if (it->first == name) return &it->second;
    }
    return nullptr;
  }
};

}  // namespace

class SemaBuilder {
 public:
  explicit SemaBuilder(ast::SpecFile spec) {
    model_.spec_ = std::make_shared<const ast::SpecFile>(std::move(spec));
  }

  Model build() {
    const ast::SpecFile& spec = *model_.spec_;
    register_names(spec);
    resolve_classes(spec);
    resolve_constants(spec);
    resolve_functions(spec);
    resolve_properties(spec);
    if (!errors_.empty()) {
      std::string message = "specification has semantic errors:";
      for (const auto& [loc, text] : errors_) {
        message += support::cat("\n  ", loc.to_string(), ": ", text);
      }
      throw SemaError(message, errors_.front().first);
    }
    return std::move(model_);
  }

 private:
  void error(SourceLoc loc, std::string message) {
    errors_.emplace_back(loc, std::move(message));
  }

  void register_names(const ast::SpecFile& spec) {
    for (const auto& cls : spec.classes) {
      if (is_builtin_type_name(cls.name) || model_.find_class(cls.name) ||
          model_.find_enum(cls.name)) {
        error(cls.loc, support::cat("duplicate type name '", cls.name, "'"));
        continue;
      }
      model_.class_by_name_.emplace(cls.name,
                                    static_cast<std::uint32_t>(model_.classes_.size()));
      model_.classes_.push_back({cls.name, std::nullopt, {}, 0});
    }
    for (const auto& en : spec.enums) {
      if (is_builtin_type_name(en.name) || model_.find_class(en.name) ||
          model_.find_enum(en.name)) {
        error(en.loc, support::cat("duplicate type name '", en.name, "'"));
        continue;
      }
      model_.enum_by_name_.emplace(en.name,
                                   static_cast<std::uint32_t>(model_.enums_.size()));
      EnumInfo info;
      info.name = en.name;
      std::set<std::string> seen;
      for (const std::string& member : en.members) {
        if (!seen.insert(member).second) {
          error(en.loc, support::cat("duplicate enum member '", member, "' in ",
                                     en.name));
          continue;
        }
        if (const auto other = model_.find_enum_member(member)) {
          error(en.loc,
                support::cat("enum member '", member, "' already defined in ",
                             model_.enums_[other->first].name,
                             " (members share one global namespace)"));
          continue;
        }
        info.members.push_back(member);
      }
      model_.enums_.push_back(std::move(info));
    }
  }

  [[nodiscard]] static bool is_builtin_type_name(std::string_view name) {
    return support::iequals(name, "int") || support::iequals(name, "float") ||
           support::iequals(name, "bool") || support::iequals(name, "string") ||
           support::iequals(name, "datetime");
  }

  Type resolve_type(const ast::TypeName& type) {
    if (type.is_set) {
      const auto cls = model_.find_class(type.name);
      if (!cls) {
        error(type.loc, support::cat("'setof ", type.name,
                                     "': element type must be a class"));
        return Type::error();
      }
      return Type::set_of(*cls);
    }
    if (support::iequals(type.name, "int")) return Type::of(TypeKind::kInt);
    if (support::iequals(type.name, "float")) return Type::of(TypeKind::kFloat);
    if (support::iequals(type.name, "bool")) return Type::of(TypeKind::kBool);
    if (support::iequals(type.name, "string")) return Type::of(TypeKind::kString);
    if (support::iequals(type.name, "datetime")) return Type::of(TypeKind::kDateTime);
    if (const auto cls = model_.find_class(type.name)) return Type::class_of(*cls);
    if (const auto en = model_.find_enum(type.name)) return Type::enum_of(*en);
    error(type.loc, support::cat("unknown type '", type.name, "'"));
    return Type::error();
  }

  void resolve_classes(const ast::SpecFile& spec) {
    // Bases first (and cycle detection), then flattened attributes.
    for (const auto& cls : spec.classes) {
      const auto id = model_.find_class(cls.name);
      if (!id) continue;  // duplicate, already reported
      if (cls.base.empty()) continue;
      const auto base = model_.find_class(cls.base);
      if (!base) {
        error(cls.loc, support::cat("unknown base class '", cls.base, "'"));
        continue;
      }
      model_.classes_[*id].base = *base;
    }
    // Cycle check.
    for (std::uint32_t id = 0; id < model_.classes_.size(); ++id) {
      std::uint32_t slow = id;
      std::set<std::uint32_t> seen{id};
      while (model_.classes_[slow].base) {
        slow = *model_.classes_[slow].base;
        if (!seen.insert(slow).second) {
          error({}, support::cat("inheritance cycle involving class '",
                                 model_.classes_[id].name, "'"));
          model_.classes_[id].base = std::nullopt;
          break;
        }
      }
    }
    // Flatten attributes in topological order (bases before derived).
    std::vector<bool> done(model_.classes_.size(), false);
    const auto flatten = [&](auto&& self, std::uint32_t id) -> void {
      if (done[id]) return;
      done[id] = true;
      ClassInfo& info = model_.classes_[id];
      if (info.base) {
        self(self, *info.base);
        info.attrs = model_.classes_[*info.base].attrs;
      }
      info.own_attr_begin = info.attrs.size();
      const ast::ClassDecl* decl = nullptr;
      for (const auto& cls : spec.classes) {
        if (cls.name == info.name) {
          decl = &cls;
          break;
        }
      }
      if (decl == nullptr) return;
      for (const auto& attr : decl->attrs) {
        if (info.find_attr(attr.name)) {
          error(attr.loc, support::cat("duplicate attribute '", attr.name,
                                       "' in class ", info.name));
          continue;
        }
        info.attrs.push_back({attr.name, resolve_type(attr.type)});
      }
    };
    for (std::uint32_t id = 0; id < model_.classes_.size(); ++id) {
      flatten(flatten, id);
    }
  }

  void resolve_constants(const ast::SpecFile& spec) {
    for (const auto& cst : spec.constants) {
      if (model_.find_constant(cst.name)) {
        error(cst.loc, support::cat("duplicate constant '", cst.name, "'"));
        continue;
      }
      const Type declared = resolve_type(cst.type);
      Scope empty;
      const Type actual = check_expr(*cst.value, empty);
      require_assignable(declared, actual, cst.loc,
                         support::cat("constant '", cst.name, "'"));
      model_.constants_.push_back({cst.name, declared, cst.value.get()});
    }
  }

  void resolve_functions(const ast::SpecFile& spec) {
    // Register signatures first so functions can call each other.
    for (const auto& fn : spec.functions) {
      if (model_.find_function(fn.name)) {
        error(fn.loc, support::cat("duplicate function '", fn.name, "'"));
        continue;
      }
      FunctionInfo info;
      info.name = fn.name;
      info.return_type = resolve_type(fn.return_type);
      for (const auto& param : fn.params) {
        info.params.emplace_back(param.name, resolve_type(param.type));
      }
      info.body = fn.body.get();
      model_.functions_.push_back(std::move(info));
    }
    for (const auto& fn : spec.functions) {
      const FunctionInfo* info = model_.find_function(fn.name);
      if (info == nullptr || info->body != fn.body.get()) continue;
      Scope scope;
      for (const auto& [name, type] : info->params) scope.vars.emplace_back(name, type);
      const Type body = check_expr(*fn.body, scope);
      require_assignable(info->return_type, body, fn.loc,
                         support::cat("function '", fn.name, "' body"));
    }
  }

  void resolve_properties(const ast::SpecFile& spec) {
    for (const auto& prop : spec.properties) {
      if (model_.find_property(prop.name)) {
        error(prop.loc, support::cat("duplicate property '", prop.name, "'"));
        continue;
      }
      PropertyInfo info;
      info.name = prop.name;
      Scope scope;
      for (const auto& param : prop.params) {
        const Type type = resolve_type(param.type);
        info.params.emplace_back(param.name, type);
        scope.vars.emplace_back(param.name, type);
      }
      for (const auto& let : prop.lets) {
        const Type declared = resolve_type(let.type);
        const Type actual = check_expr(*let.init, scope);
        require_assignable(declared, actual, let.loc,
                           support::cat("LET binding '", let.name, "'"));
        info.lets.push_back({let.name, declared, let.init.get()});
        scope.vars.emplace_back(let.name, declared);
      }
      std::set<std::string> condition_ids;
      for (const auto& cond : prop.conditions) {
        if (!cond.id.empty() && !condition_ids.insert(cond.id).second) {
          error(cond.loc, support::cat("duplicate condition id '(", cond.id,
                                       ")' in property ", prop.name));
        }
        const Type type = check_expr(*cond.pred, scope);
        if (!type.is_error() && type.kind != TypeKind::kBool) {
          error(cond.loc, support::cat("condition must be bool, got ",
                                       model_.type_name(type)));
        }
        info.conditions.push_back({cond.id, cond.pred.get()});
      }
      const auto check_arms = [&](const std::vector<ast::GuardedExpr>& arms,
                                  std::vector<GuardedInfo>& out,
                                  std::string_view what) {
        for (const auto& arm : arms) {
          if (!arm.guard.empty() && !condition_ids.contains(arm.guard)) {
            error(arm.loc, support::cat(what, " guard '(", arm.guard,
                                        ")' does not name a condition"));
          }
          const Type type = check_expr(*arm.expr, scope);
          if (!type.is_error() && !type.is_numeric()) {
            error(arm.loc, support::cat(what, " must be numeric, got ",
                                        model_.type_name(type)));
          }
          out.push_back({arm.guard, arm.expr.get()});
        }
      };
      check_arms(prop.confidence, info.confidence, "CONFIDENCE");
      check_arms(prop.severity, info.severity, "SEVERITY");
      model_.properties_.push_back(std::move(info));
    }
  }

  void require_assignable(const Type& target, const Type& source, SourceLoc loc,
                          std::string_view what) {
    if (target.is_error() || source.is_error()) return;
    if (target == source) return;
    if (target.kind == TypeKind::kFloat && source.kind == TypeKind::kInt) return;
    if (target.kind == TypeKind::kClass && source.kind == TypeKind::kNullRef) return;
    if (target.kind == TypeKind::kClass && source.kind == TypeKind::kClass &&
        model_.is_subclass_of(source.id, target.id)) {
      return;
    }
    error(loc, support::cat(what, ": cannot use ", model_.type_name(source),
                            " where ", model_.type_name(target), " is expected"));
  }

  // --- expression type checking --------------------------------------------

  Type check_expr(const ast::Expr& e, Scope& scope) {
    using Kind = ast::Expr::Kind;
    switch (e.kind) {
      case Kind::kIntLit: return Type::of(TypeKind::kInt);
      case Kind::kFloatLit: return Type::of(TypeKind::kFloat);
      case Kind::kBoolLit: return Type::of(TypeKind::kBool);
      case Kind::kStringLit: return Type::of(TypeKind::kString);
      case Kind::kNullLit: return Type::of(TypeKind::kNullRef);

      case Kind::kIdent: {
        if (const Type* var = scope.find(e.name)) return *var;
        if (const ConstInfo* cst = model_.find_constant(e.name)) return cst->type;
        if (const auto member = model_.find_enum_member(e.name)) {
          return Type::enum_of(member->first);
        }
        error(e.loc, support::cat("unknown name '", e.name, "'"));
        return Type::error();
      }

      case Kind::kMember: {
        const Type base = check_expr(*e.base, scope);
        if (base.is_error()) return Type::error();
        if (base.kind != TypeKind::kClass) {
          error(e.loc, support::cat("attribute access '.", e.name,
                                    "' on non-object type ",
                                    model_.type_name(base)));
          return Type::error();
        }
        const ClassInfo& cls = model_.class_info(base.id);
        const auto attr = cls.find_attr(e.name);
        if (!attr) {
          error(e.loc, support::cat("class ", cls.name, " has no attribute '",
                                    e.name, "'"));
          return Type::error();
        }
        return cls.attrs[*attr].type;
      }

      case Kind::kCall: {
        const FunctionInfo* fn = model_.find_function(e.name);
        if (fn == nullptr) {
          error(e.loc, support::cat("unknown function '", e.name, "'"));
          for (const auto& arg : e.args) check_expr(*arg, scope);
          return Type::error();
        }
        if (e.args.size() != fn->params.size()) {
          error(e.loc, support::cat("function '", e.name, "' expects ",
                                    fn->params.size(), " arguments, got ",
                                    e.args.size()));
        }
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          const Type arg = check_expr(*e.args[i], scope);
          if (i < fn->params.size()) {
            require_assignable(fn->params[i].second, arg, e.args[i]->loc,
                               support::cat("argument ", i + 1, " of '", e.name,
                                            "'"));
          }
        }
        return fn->return_type;
      }

      case Kind::kUnary: {
        const Type operand = check_expr(*e.lhs, scope);
        if (operand.is_error()) return Type::error();
        if (e.un_op == ast::UnOp::kNot) {
          if (operand.kind != TypeKind::kBool) {
            error(e.loc, support::cat("NOT requires bool, got ",
                                      model_.type_name(operand)));
            return Type::error();
          }
          return operand;
        }
        if (!operand.is_numeric()) {
          error(e.loc, support::cat("unary '-' requires a numeric operand, got ",
                                    model_.type_name(operand)));
          return Type::error();
        }
        return operand;
      }

      case Kind::kBinary:
        return check_binary(e, scope);

      case Kind::kComprehension: {
        const Type set = check_expr(*e.base, scope);
        if (set.is_error()) return Type::error();
        if (set.kind != TypeKind::kSet) {
          error(e.loc, support::cat("comprehension requires a set, got ",
                                    model_.type_name(set)));
          return Type::error();
        }
        scope.vars.emplace_back(e.name, Type::class_of(set.id));
        if (e.filter) {
          const Type pred = check_expr(*e.filter, scope);
          if (!pred.is_error() && pred.kind != TypeKind::kBool) {
            error(e.filter->loc, support::cat("WITH predicate must be bool, got ",
                                              model_.type_name(pred)));
          }
        }
        scope.vars.pop_back();
        return set;
      }

      case Kind::kAggregate: {
        if (!e.base) {
          // Identity form: MAX(scalar).
          const Type value = check_expr(*e.agg_value, scope);
          if (value.is_error()) return Type::error();
          if (!value.is_numeric()) {
            error(e.loc, support::cat(ast::to_string(e.agg_kind),
                                      " over a single value requires a numeric "
                                      "operand, got ",
                                      model_.type_name(value)));
            return Type::error();
          }
          return aggregate_result(e.agg_kind, value);
        }
        const Type set = check_expr(*e.base, scope);
        if (set.is_error()) return Type::error();
        if (set.kind != TypeKind::kSet) {
          error(e.loc, support::cat("aggregate binder must range over a set, got ",
                                    model_.type_name(set)));
          return Type::error();
        }
        scope.vars.emplace_back(e.name, Type::class_of(set.id));
        const Type value = check_expr(*e.agg_value, scope);
        if (e.agg_kind != ast::AggKind::kCount && !value.is_error() &&
            !value.is_numeric()) {
          error(e.agg_value->loc,
                support::cat("aggregate value must be numeric, got ",
                             model_.type_name(value)));
        }
        if (e.filter) {
          const Type pred = check_expr(*e.filter, scope);
          if (!pred.is_error() && pred.kind != TypeKind::kBool) {
            error(e.filter->loc, support::cat("aggregate filter must be bool, got ",
                                              model_.type_name(pred)));
          }
        }
        scope.vars.pop_back();
        return aggregate_result(e.agg_kind, value);
      }

      case Kind::kUnique: {
        const Type set = check_expr(*e.base, scope);
        if (set.is_error()) return Type::error();
        if (set.kind != TypeKind::kSet) {
          error(e.loc, support::cat("UNIQUE requires a set, got ",
                                    model_.type_name(set)));
          return Type::error();
        }
        return Type::class_of(set.id);
      }

      case Kind::kExists:
      case Kind::kSize: {
        const Type set = check_expr(*e.base, scope);
        if (set.is_error()) return Type::error();
        if (set.kind != TypeKind::kSet) {
          error(e.loc, support::cat(e.kind == Kind::kExists ? "EXISTS" : "SIZE",
                                    " requires a set, got ",
                                    model_.type_name(set)));
          return Type::error();
        }
        return Type::of(e.kind == Kind::kExists ? TypeKind::kBool : TypeKind::kInt);
      }
    }
    return Type::error();
  }

  [[nodiscard]] static Type aggregate_result(ast::AggKind kind, const Type& value) {
    switch (kind) {
      case ast::AggKind::kMin:
      case ast::AggKind::kMax:
        return value.is_numeric() ? value : Type::of(TypeKind::kFloat);
      case ast::AggKind::kSum:
      case ast::AggKind::kAvg:
        return Type::of(TypeKind::kFloat);
      case ast::AggKind::kCount:
        return Type::of(TypeKind::kInt);
    }
    return Type::error();
  }

  Type check_binary(const ast::Expr& e, Scope& scope) {
    const Type lhs = check_expr(*e.lhs, scope);
    const Type rhs = check_expr(*e.rhs, scope);
    if (lhs.is_error() || rhs.is_error()) return Type::error();

    using ast::BinOp;
    switch (e.bin_op) {
      case BinOp::kAnd:
      case BinOp::kOr:
        if (lhs.kind != TypeKind::kBool || rhs.kind != TypeKind::kBool) {
          error(e.loc, support::cat(ast::to_string(e.bin_op),
                                    " requires bool operands, got ",
                                    model_.type_name(lhs), " and ",
                                    model_.type_name(rhs)));
          return Type::error();
        }
        return Type::of(TypeKind::kBool);

      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul:
      case BinOp::kDiv:
        if (!lhs.is_numeric() || !rhs.is_numeric()) {
          error(e.loc, support::cat("arithmetic '", ast::to_string(e.bin_op),
                                    "' requires numeric operands, got ",
                                    model_.type_name(lhs), " and ",
                                    model_.type_name(rhs)));
          return Type::error();
        }
        if (e.bin_op == BinOp::kDiv) return Type::of(TypeKind::kFloat);
        if (lhs.kind == TypeKind::kFloat || rhs.kind == TypeKind::kFloat) {
          return Type::of(TypeKind::kFloat);
        }
        return Type::of(TypeKind::kInt);

      case BinOp::kEq:
      case BinOp::kNe: {
        const bool ok =
            (lhs.is_numeric() && rhs.is_numeric()) ||
            (lhs.kind == rhs.kind &&
             (lhs.kind == TypeKind::kString || lhs.kind == TypeKind::kBool ||
              lhs.kind == TypeKind::kDateTime)) ||
            (lhs.kind == TypeKind::kEnum && rhs.kind == TypeKind::kEnum &&
             lhs.id == rhs.id) ||
            (lhs.kind == TypeKind::kClass && rhs.kind == TypeKind::kClass &&
             (model_.is_subclass_of(lhs.id, rhs.id) ||
              model_.is_subclass_of(rhs.id, lhs.id))) ||
            (lhs.kind == TypeKind::kClass && rhs.kind == TypeKind::kNullRef) ||
            (lhs.kind == TypeKind::kNullRef && rhs.kind == TypeKind::kClass) ||
            (lhs.kind == TypeKind::kNullRef && rhs.kind == TypeKind::kNullRef);
        if (!ok) {
          error(e.loc, support::cat("cannot compare ", model_.type_name(lhs),
                                    " with ", model_.type_name(rhs)));
          return Type::error();
        }
        return Type::of(TypeKind::kBool);
      }

      default: {  // kLt, kLe, kGt, kGe
        const bool ok = (lhs.is_numeric() && rhs.is_numeric()) ||
                        (lhs.kind == rhs.kind && lhs.is_ordered());
        if (!ok) {
          error(e.loc, support::cat("ordering comparison requires ordered "
                                    "operands, got ",
                                    model_.type_name(lhs), " and ",
                                    model_.type_name(rhs)));
          return Type::error();
        }
        return Type::of(TypeKind::kBool);
      }
    }
  }

  Model model_;
  std::vector<std::pair<SourceLoc, std::string>> errors_;
};

Model analyze(ast::SpecFile spec) { return SemaBuilder(std::move(spec)).build(); }

ast::SpecFile merge_specs(std::vector<ast::SpecFile> specs) {
  ast::SpecFile merged;
  for (ast::SpecFile& spec : specs) {
    for (auto& c : spec.classes) merged.classes.push_back(std::move(c));
    for (auto& e : spec.enums) merged.enums.push_back(std::move(e));
    for (auto& f : spec.functions) merged.functions.push_back(std::move(f));
    for (auto& k : spec.constants) merged.constants.push_back(std::move(k));
    for (auto& p : spec.properties) merged.properties.push_back(std::move(p));
  }
  return merged;
}

Model load_model(std::initializer_list<std::string_view> sources) {
  std::vector<ast::SpecFile> specs;
  specs.reserve(sources.size());
  for (std::string_view source : sources) {
    specs.push_back(parse_spec_or_throw(source));
  }
  return analyze(merge_specs(std::move(specs)));
}

}  // namespace kojak::asl
