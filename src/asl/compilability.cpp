#include "asl/compilability.hpp"

#include <optional>

#include "asl/ast.hpp"
#include "support/str.hpp"

namespace kojak::asl {

using ast::Expr;

bool mentions_name(const Expr& e, const std::string& name) {  // NOLINT(misc-no-recursion)
  if (e.kind == Expr::Kind::kIdent && e.name == name) return true;
  // A nested binder of the same name shadows the outer one.
  if ((e.kind == Expr::Kind::kComprehension ||
       e.kind == Expr::Kind::kAggregate) &&
      e.name == name) {
    return e.base && mentions_name(*e.base, name);
  }
  if (e.base && mentions_name(*e.base, name)) return true;
  if (e.lhs && mentions_name(*e.lhs, name)) return true;
  if (e.rhs && mentions_name(*e.rhs, name)) return true;
  if (e.agg_value && mentions_name(*e.agg_value, name)) return true;
  if (e.filter && mentions_name(*e.filter, name)) return true;
  for (const auto& arg : e.args) {
    if (mentions_name(*arg, name)) return true;
  }
  return false;
}

namespace {

class SiteChecker {
 public:
  explicit SiteChecker(const Model& model) : model_(&model) {}

  void push(std::string name, Type type) {
    env_.emplace_back(std::move(name), type);
  }

  /// Checks one site; returns the blocker, or empty when compilable.
  [[nodiscard]] std::string check(const Expr& e) {
    reason_.clear();
    (void)scalar(e);
    return reason_;
  }

 private:
  std::optional<Type> fail(std::string reason) {
    if (reason_.empty()) reason_ = std::move(reason);
    return std::nullopt;
  }

  [[nodiscard]] const Type* lookup(std::string_view name) const {
    for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
      if (it->first == name) return &it->second;
    }
    return nullptr;
  }

  /// Scalar position, no set binder in scope.
  std::optional<Type> scalar(const Expr& e) {  // NOLINT(misc-no-recursion)
    using Kind = Expr::Kind;
    switch (e.kind) {
      case Kind::kIntLit: return Type::of(TypeKind::kInt);
      case Kind::kFloatLit: return Type::of(TypeKind::kFloat);
      case Kind::kBoolLit: return Type::of(TypeKind::kBool);
      case Kind::kStringLit: return Type::of(TypeKind::kString);
      case Kind::kNullLit: return Type::of(TypeKind::kNullRef);

      case Kind::kIdent: {
        if (const Type* bound = lookup(e.name)) return *bound;
        if (const ConstInfo* cst = model_->find_constant(e.name)) {
          return cst->type;
        }
        if (const auto member = model_->find_enum_member(e.name)) {
          return Type::enum_of(member->first);
        }
        return fail(support::cat("unknown name '", e.name, "'"));
      }

      case Kind::kMember: {
        const auto base = scalar(*e.base);
        if (!base) return std::nullopt;
        if (base->kind == TypeKind::kSet) {
          return fail(support::cat(
              "set value reaches scalar position before '.", e.name,
              "' (wrap it in UNIQUE/EXISTS/SIZE or an aggregate)"));
        }
        if (base->kind != TypeKind::kClass) {
          return fail(support::cat("attribute access '.", e.name,
                                   "' on a non-object expression"));
        }
        const ClassInfo& cls = model_->class_info(base->id);
        const auto attr = cls.find_attr(e.name);
        if (!attr) {
          return fail(support::cat("class ", cls.name, " has no attribute '",
                                   e.name, "'"));
        }
        const Type& attr_type = cls.attrs[*attr].type;
        if (attr_type.kind == TypeKind::kSet) {
          return fail(support::cat(
              "set-valued attribute '", e.name,
              "' in scalar position (wrap it in UNIQUE/EXISTS/SIZE or an "
              "aggregate)"));
        }
        return attr_type;
      }

      case Kind::kCall: {
        const FunctionInfo* fn = model_->find_function(e.name);
        if (fn == nullptr) {
          return fail(support::cat("unknown function '", e.name, "'"));
        }
        if (e.args.size() != fn->params.size()) {
          return fail(support::cat("function ", fn->name, " expects ",
                                   fn->params.size(), " arguments"));
        }
        if (depth_ > kMaxInlineDepth) {
          return fail(support::cat("function ", fn->name,
                                   " inlines too deep (recursive "
                                   "specification functions cannot compile)"));
        }
        for (const auto& arg : e.args) {
          if (!scalar(*arg)) return std::nullopt;
        }
        // The body sees only the function's parameters.
        std::vector<std::pair<std::string, Type>> saved;
        saved.swap(env_);
        for (const auto& [name, type] : fn->params) push(name, type);
        ++depth_;
        const auto body = scalar(*fn->body);
        --depth_;
        env_ = std::move(saved);
        if (!body) return std::nullopt;
        return fn->return_type;
      }

      case Kind::kUnary: {
        const auto operand = scalar(*e.lhs);
        if (!operand) return std::nullopt;
        if (e.un_op == ast::UnOp::kNot) return Type::of(TypeKind::kBool);
        return operand;
      }

      case Kind::kBinary: {
        const auto lhs = scalar(*e.lhs);
        if (!lhs) return std::nullopt;
        const auto rhs = scalar(*e.rhs);
        if (!rhs) return std::nullopt;
        using ast::BinOp;
        switch (e.bin_op) {
          case BinOp::kAnd: case BinOp::kOr:
          case BinOp::kEq: case BinOp::kNe:
          case BinOp::kLt: case BinOp::kLe:
          case BinOp::kGt: case BinOp::kGe:
            return Type::of(TypeKind::kBool);
          case BinOp::kDiv:
            return Type::of(TypeKind::kFloat);
          default:
            return (lhs->kind == TypeKind::kInt && rhs->kind == TypeKind::kInt)
                       ? Type::of(TypeKind::kInt)
                       : Type::of(TypeKind::kFloat);
        }
      }

      case Kind::kUnique: {
        const auto elem = set_chain(*e.base);
        if (!elem) return std::nullopt;
        return Type::class_of(*elem);
      }
      case Kind::kExists: {
        if (!set_chain(*e.base)) return std::nullopt;
        return Type::of(TypeKind::kBool);
      }
      case Kind::kSize: {
        if (!set_chain(*e.base)) return std::nullopt;
        return Type::of(TypeKind::kInt);
      }

      case Kind::kAggregate: {
        if (!e.base) return scalar(*e.agg_value);  // identity form
        const auto elem = set_chain(*e.base);
        if (!elem) return std::nullopt;
        if (e.filter && !over_binder(*e.filter, e.name, *elem)) {
          return std::nullopt;
        }
        if (e.agg_kind != ast::AggKind::kCount &&
            !over_binder(*e.agg_value, e.name, *elem)) {
          return std::nullopt;
        }
        return e.agg_kind == ast::AggKind::kCount ? Type::of(TypeKind::kInt)
                                                  : Type::of(TypeKind::kFloat);
      }

      case Kind::kComprehension:
        return fail(
            "set comprehension in scalar position (only UNIQUE/EXISTS/SIZE "
            "and aggregates consume sets)");
    }
    return fail("unhandled expression kind");
  }

  /// Set position: a setof-attribute chain or a comprehension over one.
  /// Returns the element class.
  std::optional<std::uint32_t> set_chain(const Expr& e) {  // NOLINT(misc-no-recursion)
    if (e.kind == Expr::Kind::kMember) {
      const auto base = scalar(*e.base);
      if (!base) return std::nullopt;
      if (base->kind != TypeKind::kClass) {
        fail(support::cat("set base of '.", e.name, "' is not an object"));
        return std::nullopt;
      }
      const ClassInfo& cls = model_->class_info(base->id);
      const auto attr = cls.find_attr(e.name);
      if (!attr || cls.attrs[*attr].type.kind != TypeKind::kSet) {
        fail(support::cat("'", e.name, "' is not a setof attribute of ",
                          cls.name));
        return std::nullopt;
      }
      return cls.attrs[*attr].type.id;
    }
    if (e.kind == Expr::Kind::kComprehension) {
      const auto elem = set_chain(*e.base);
      if (!elem) return std::nullopt;
      if (e.filter && !over_binder(*e.filter, e.name, *elem)) {
        return std::nullopt;
      }
      return elem;
    }
    fail("set expression must be a setof attribute chain or a comprehension "
         "over one");
    return std::nullopt;
  }

  /// Filter/value expression of a set with `binder` in scope. Parts not
  /// mentioning the binder must compile as uncorrelated scalars; parts that
  /// do are limited to member chains, comparisons, and boolean/arithmetic
  /// glue (the engine's scalar subqueries cannot be correlated).
  bool over_binder(const Expr& e, const std::string& binder,  // NOLINT(misc-no-recursion)
                   std::uint32_t elem_class) {
    if (!mentions_name(e, binder)) return scalar(e).has_value();
    using Kind = Expr::Kind;
    switch (e.kind) {
      case Kind::kIdent:
        return true;  // the binder itself
      case Kind::kMember: {
        // Must be a member chain rooted at the binder.
        std::vector<const Expr*> chain;
        const Expr* cur = &e;
        while (cur->kind == Kind::kMember) {
          chain.push_back(cur);
          cur = cur->base.get();
        }
        if (cur->kind != Kind::kIdent || cur->name != binder) {
          fail(support::cat("member path in a set filter must be rooted at "
                            "binder '", binder, "'"));
          return false;
        }
        std::uint32_t cls_id = elem_class;
        for (std::size_t i = chain.size(); i-- > 0;) {
          const ClassInfo& cls = model_->class_info(cls_id);
          const auto attr = cls.find_attr(chain[i]->name);
          if (!attr) {
            fail(support::cat("class ", cls.name, " has no attribute '",
                              chain[i]->name, "'"));
            return false;
          }
          const Type& attr_type = cls.attrs[*attr].type;
          if (i == 0) {
            if (attr_type.kind == TypeKind::kSet) {
              fail(support::cat("set-valued attribute '", chain[i]->name,
                                "' inside a set filter"));
              return false;
            }
            return true;
          }
          if (attr_type.kind != TypeKind::kClass) {
            fail(support::cat("'.", chain[i]->name,
                              "' must be an object reference"));
            return false;
          }
          cls_id = attr_type.id;
        }
        return true;
      }
      case Kind::kUnary:
        return over_binder(*e.lhs, binder, elem_class);
      case Kind::kBinary:
        return over_binder(*e.lhs, binder, elem_class) &&
               over_binder(*e.rhs, binder, elem_class);
      default:
        fail(support::cat(
            "expression correlated with binder '", binder,
            "' is not compilable (aggregates/calls over the binder are not "
            "supported)"));
        return false;
    }
  }

  static constexpr int kMaxInlineDepth = 16;

  const Model* model_;
  std::vector<std::pair<std::string, Type>> env_;
  std::string reason_;
  int depth_ = 0;
};

}  // namespace

PropertyCompilability classify_whole_condition(const Model& model,
                                               const PropertyInfo& prop) {
  PropertyCompilability out;
  out.property = prop.name;

  SiteChecker checker(model);
  for (const auto& [name, type] : prop.params) checker.push(name, type);

  const auto add = [&](std::string site, const ast::Expr& expr) {
    std::string reason = checker.check(expr);
    out.sites.push_back(
        {std::move(site), reason.empty(), std::move(reason)});
  };

  for (const LetInfo& let : prop.lets) {
    add(support::cat("let ", let.name), *let.init);
    checker.push(let.name, let.type);
  }
  for (std::size_t i = 0; i < prop.conditions.size(); ++i) {
    const ConditionInfo& cond = prop.conditions[i];
    add(support::cat("condition ",
                     cond.id.empty() ? support::cat("#", i + 1)
                                     : support::cat("(", cond.id, ")")),
        *cond.pred);
  }
  for (std::size_t i = 0; i < prop.confidence.size(); ++i) {
    add(support::cat("confidence #", i + 1), *prop.confidence[i].expr);
  }
  for (std::size_t i = 0; i < prop.severity.size(); ++i) {
    add(support::cat("severity #", i + 1), *prop.severity[i].expr);
  }
  return out;
}

std::vector<PropertyCompilability> classify_whole_condition(const Model& model) {
  std::vector<PropertyCompilability> out;
  out.reserve(model.properties().size());
  for (const PropertyInfo& prop : model.properties()) {
    out.push_back(classify_whole_condition(model, prop));
  }
  return out;
}

}  // namespace kojak::asl
