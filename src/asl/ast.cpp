#include "asl/ast.hpp"

namespace kojak::asl::ast {

std::string_view to_string(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
  }
  return "?";
}

std::string_view to_string(AggKind kind) {
  switch (kind) {
    case AggKind::kMin: return "MIN";
    case AggKind::kMax: return "MAX";
    case AggKind::kSum: return "SUM";
    case AggKind::kAvg: return "AVG";
    case AggKind::kCount: return "COUNT";
  }
  return "?";
}

ExprPtr make_expr(Expr::Kind kind, support::SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->loc = loc;
  return e;
}

ExprPtr Expr::clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->loc = loc;
  out->int_value = int_value;
  out->float_value = float_value;
  out->bool_value = bool_value;
  out->string_value = string_value;
  out->name = name;
  if (base) out->base = base->clone();
  if (lhs) out->lhs = lhs->clone();
  if (rhs) out->rhs = rhs->clone();
  for (const auto& a : args) out->args.push_back(a->clone());
  out->un_op = un_op;
  out->bin_op = bin_op;
  out->agg_kind = agg_kind;
  if (agg_value) out->agg_value = agg_value->clone();
  if (filter) out->filter = filter->clone();
  return out;
}

}  // namespace kojak::asl::ast
