#ifndef KOJAK_ASL_TOKEN_HPP
#define KOJAK_ASL_TOKEN_HPP

#include <cstdint>
#include <string>
#include <string_view>

#include "support/source_location.hpp"

namespace kojak::asl {

/// Token kinds of the APART Specification Language. Structural keywords get
/// dedicated kinds; builtin function names (UNIQUE, MIN, MAX, SUM, ...) stay
/// ordinary identifiers so they never collide with attribute names.
enum class TokenKind : std::uint8_t {
  kIdent,
  kIntLit,
  kFloatLit,
  kStringLit,
  // keywords (case-insensitive, as in the paper: "Property" vs "PROPERTY")
  kClass, kEnum, kExtends, kProperty, kConst,
  kCondition, kConfidence, kSeverity,
  kLet, kIn, kWith, kWhere, kSetof,
  kAnd, kOr, kNot, kTrue, kFalse, kNull,
  // punctuation / operators
  kLBrace, kRBrace, kLParen, kRParen,
  kSemicolon, kColon, kComma, kDot,
  kAssign,   // =
  kArrow,    // ->
  kEq, kNe, kLt, kLe, kGt, kGe,
  kPlus, kMinus, kStar, kSlash,
  kEnd,
};

[[nodiscard]] std::string_view to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::int64_t int_value = 0;
  double float_value = 0.0;
  support::SourceLoc loc;

  [[nodiscard]] bool is(TokenKind k) const noexcept { return kind == k; }
};

}  // namespace kojak::asl

#endif  // KOJAK_ASL_TOKEN_HPP
