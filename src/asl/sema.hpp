#ifndef KOJAK_ASL_SEMA_HPP
#define KOJAK_ASL_SEMA_HPP

#include <string_view>
#include <vector>

#include "asl/model.hpp"
#include "asl/parser.hpp"

namespace kojak::asl {

/// Runs semantic analysis over a parsed specification and produces the
/// resolved Model. Throws support::SemaError (with all diagnostics rendered)
/// when the spec is invalid.
[[nodiscard]] Model analyze(ast::SpecFile spec);

/// Concatenates several parsed documents (e.g. the data-model file and the
/// property file) into one spec before analysis.
[[nodiscard]] ast::SpecFile merge_specs(std::vector<ast::SpecFile> specs);

/// Parse + merge + analyze in one step.
[[nodiscard]] Model load_model(std::initializer_list<std::string_view> sources);

}  // namespace kojak::asl

#endif  // KOJAK_ASL_SEMA_HPP
