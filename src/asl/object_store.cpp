#include "asl/object_store.hpp"

#include <algorithm>

#include "support/str.hpp"

namespace kojak::asl {

using support::EvalError;

std::int64_t RtValue::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return *i;
  throw EvalError(support::cat("value is not int: ", to_display()));
}

double RtValue::as_float() const {
  if (const auto* d = std::get_if<double>(&v_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v_)) {
    return static_cast<double>(*i);
  }
  throw EvalError(support::cat("value is not numeric: ", to_display()));
}

bool RtValue::as_bool() const {
  if (const auto* b = std::get_if<bool>(&v_)) return *b;
  throw EvalError(support::cat("value is not bool: ", to_display()));
}

const std::string& RtValue::as_string() const {
  if (const auto* s = std::get_if<std::string>(&v_)) return *s;
  throw EvalError(support::cat("value is not String: ", to_display()));
}

EnumVal RtValue::as_enum() const {
  if (const auto* e = std::get_if<EnumVal>(&v_)) return *e;
  throw EvalError(support::cat("value is not an enum member: ", to_display()));
}

ObjectId RtValue::as_object() const {
  if (is_null()) return kNullObject;
  if (const auto* o = std::get_if<ObjRef>(&v_)) return o->id;
  throw EvalError(support::cat("value is not an object: ", to_display()));
}

const std::vector<ObjectId>& RtValue::as_set() const {
  if (const auto* s = std::get_if<SetPtr>(&v_)) {
    if (*s != nullptr) return **s;
  }
  throw EvalError(support::cat("value is not a set: ", to_display()));
}

bool RtValue::equals(const RtValue& a, const RtValue& b) {
  // Numeric cross-type equality (int vs float) first.
  if (a.is_numeric() && b.is_numeric()) return a.as_float() == b.as_float();
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_bool() && b.is_bool()) return a.as_bool() == b.as_bool();
  if (a.is_string() && b.is_string()) return a.as_string() == b.as_string();
  if (a.is_enum() && b.is_enum()) return a.as_enum() == b.as_enum();
  if (a.is_object() && b.is_object()) return a.as_object() == b.as_object();
  throw EvalError(support::cat("cannot compare ", a.to_display(), " with ",
                               b.to_display()));
}

std::string RtValue::to_display() const {
  if (is_null()) return "null";
  if (is_int()) return std::to_string(as_int());
  if (is_float()) return support::format_double(as_float());
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_string()) return as_string();
  if (is_enum()) {
    const EnumVal e = as_enum();
    return support::cat("enum#", e.enum_id, ".", e.ordinal);
  }
  if (is_object()) return support::cat("object#", as_object());
  return support::cat("set(", as_set().size(), ")");
}

ObjectId ObjectStore::create(std::uint32_t class_id) {
  if (class_id >= model_->classes().size()) {
    throw EvalError(support::cat("unknown class id ", class_id));
  }
  const ObjectId id = static_cast<ObjectId>(objects_.size());
  Object obj;
  obj.class_id = class_id;
  obj.attrs.resize(model_->class_info(class_id).attrs.size());
  objects_.push_back(std::move(obj));
  if (by_class_.size() < model_->classes().size()) {
    by_class_.resize(model_->classes().size());
  }
  by_class_[class_id].push_back(id);
  return id;
}

ObjectId ObjectStore::create(std::string_view class_name) {
  const auto cls = model_->find_class(class_name);
  if (!cls) throw EvalError(support::cat("unknown class '", class_name, "'"));
  return create(*cls);
}

std::size_t ObjectStore::attr_index_checked(ObjectId id,
                                            std::string_view attr) const {
  const Object& obj = objects_.at(id);
  const ClassInfo& cls = model_->class_info(obj.class_id);
  const auto index = cls.find_attr(attr);
  if (!index) {
    throw EvalError(support::cat("class ", cls.name, " has no attribute '",
                                 attr, "'"));
  }
  return *index;
}

void ObjectStore::set_attr(ObjectId id, std::string_view attr, RtValue value) {
  set_attr(id, attr_index_checked(id, attr), std::move(value));
}

void ObjectStore::set_attr(ObjectId id, std::size_t attr_index, RtValue value) {
  objects_.at(id).attrs.at(attr_index) = std::move(value);
}

const RtValue& ObjectStore::attr(ObjectId id, std::string_view attr) const {
  return objects_.at(id).attrs.at(attr_index_checked(id, attr));
}

void ObjectStore::add_to_set(ObjectId id, std::string_view attr, ObjectId member) {
  const std::size_t index = attr_index_checked(id, attr);
  RtValue& slot = objects_.at(id).attrs.at(index);
  auto vec = std::make_shared<std::vector<ObjectId>>();
  if (!slot.is_null()) {
    const auto& current = slot.as_set();
    vec->reserve(current.size() + 1);
    vec->assign(current.begin(), current.end());
  }
  vec->push_back(member);
  slot = RtValue::of_set(std::move(vec));
}

std::vector<ObjectId> ObjectStore::all_of(std::uint32_t class_id,
                                          bool include_subclasses) const {
  std::vector<ObjectId> out;
  for (std::uint32_t cls = 0; cls < by_class_.size(); ++cls) {
    const bool matches = include_subclasses ? model_->is_subclass_of(cls, class_id)
                                            : cls == class_id;
    if (!matches) continue;
    out.insert(out.end(), by_class_[cls].begin(), by_class_[cls].end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ObjectId> ObjectStore::all_of(std::string_view class_name,
                                          bool include_subclasses) const {
  const auto cls = model_->find_class(class_name);
  if (!cls) throw EvalError(support::cat("unknown class '", class_name, "'"));
  return all_of(*cls, include_subclasses);
}

}  // namespace kojak::asl
