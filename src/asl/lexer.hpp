#ifndef KOJAK_ASL_LEXER_HPP
#define KOJAK_ASL_LEXER_HPP

#include <string_view>
#include <vector>

#include "asl/token.hpp"

namespace kojak::asl {

/// Tokenizes ASL source. Supports `//` and `/* */` comments, double-quoted
/// strings with backslash escapes, and the operator set of Figure 1 plus the
/// expression syntax used by the paper's examples (`==`, `->`, ...).
/// Throws support::ParseError on malformed input.
[[nodiscard]] std::vector<Token> lex_asl(std::string_view source);

}  // namespace kojak::asl

#endif  // KOJAK_ASL_LEXER_HPP
