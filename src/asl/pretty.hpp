#ifndef KOJAK_ASL_PRETTY_HPP
#define KOJAK_ASL_PRETTY_HPP

#include <string>

#include "asl/ast.hpp"

namespace kojak::asl {

/// Renders an expression back to ASL surface syntax (fully parenthesized
/// where precedence requires it).
[[nodiscard]] std::string to_source(const ast::Expr& expr);

/// Renders a whole specification. parse(to_source(parse(x))) is structurally
/// identical to parse(x); the round-trip tests rely on this.
[[nodiscard]] std::string to_source(const ast::SpecFile& spec);

}  // namespace kojak::asl

#endif  // KOJAK_ASL_PRETTY_HPP
