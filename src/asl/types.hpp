#ifndef KOJAK_ASL_TYPES_HPP
#define KOJAK_ASL_TYPES_HPP

#include <cstdint>
#include <string>

namespace kojak::asl {

enum class TypeKind : std::uint8_t {
  kError,     // poisoned by a prior diagnostic; suppresses error cascades
  kInt,
  kFloat,
  kBool,
  kString,
  kDateTime,
  kClass,
  kEnum,
  kSet,       // setof <class>; `id` is the element class
  kNullRef,   // type of the `null` literal, compatible with any class
};

/// Semantic type of an ASL expression or attribute. Sets always contain
/// objects (`setof <class>`), which matches the paper's data models.
struct Type {
  TypeKind kind = TypeKind::kError;
  std::uint32_t id = 0;  // class id (kClass/kSet element) or enum id (kEnum)

  [[nodiscard]] static Type error() { return {TypeKind::kError, 0}; }
  [[nodiscard]] static Type of(TypeKind kind) { return {kind, 0}; }
  [[nodiscard]] static Type class_of(std::uint32_t id) {
    return {TypeKind::kClass, id};
  }
  [[nodiscard]] static Type enum_of(std::uint32_t id) {
    return {TypeKind::kEnum, id};
  }
  [[nodiscard]] static Type set_of(std::uint32_t class_id) {
    return {TypeKind::kSet, class_id};
  }

  [[nodiscard]] bool is_error() const noexcept { return kind == TypeKind::kError; }
  [[nodiscard]] bool is_numeric() const noexcept {
    return kind == TypeKind::kInt || kind == TypeKind::kFloat;
  }
  [[nodiscard]] bool is_ordered() const noexcept {
    return is_numeric() || kind == TypeKind::kString ||
           kind == TypeKind::kDateTime;
  }

  friend bool operator==(const Type&, const Type&) = default;
};

}  // namespace kojak::asl

#endif  // KOJAK_ASL_TYPES_HPP
