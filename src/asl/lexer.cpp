#include "asl/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::asl {

using support::ParseError;
using support::SourceLoc;

std::string_view to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kIntLit: return "integer literal";
    case TokenKind::kFloatLit: return "float literal";
    case TokenKind::kStringLit: return "string literal";
    case TokenKind::kClass: return "CLASS";
    case TokenKind::kEnum: return "ENUM";
    case TokenKind::kExtends: return "EXTENDS";
    case TokenKind::kProperty: return "PROPERTY";
    case TokenKind::kConst: return "CONST";
    case TokenKind::kCondition: return "CONDITION";
    case TokenKind::kConfidence: return "CONFIDENCE";
    case TokenKind::kSeverity: return "SEVERITY";
    case TokenKind::kLet: return "LET";
    case TokenKind::kIn: return "IN";
    case TokenKind::kWith: return "WITH";
    case TokenKind::kWhere: return "WHERE";
    case TokenKind::kSetof: return "SETOF";
    case TokenKind::kAnd: return "AND";
    case TokenKind::kOr: return "OR";
    case TokenKind::kNot: return "NOT";
    case TokenKind::kTrue: return "TRUE";
    case TokenKind::kFalse: return "FALSE";
    case TokenKind::kNull: return "NULL";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kEnd: return "end of file";
  }
  return "?";
}

namespace {

struct Keyword {
  const char* text;
  TokenKind kind;
};

constexpr Keyword kKeywords[] = {
    {"class", TokenKind::kClass},     {"enum", TokenKind::kEnum},
    {"extends", TokenKind::kExtends}, {"property", TokenKind::kProperty},
    {"const", TokenKind::kConst},     {"condition", TokenKind::kCondition},
    {"confidence", TokenKind::kConfidence},
    {"severity", TokenKind::kSeverity},
    {"let", TokenKind::kLet},         {"in", TokenKind::kIn},
    {"with", TokenKind::kWith},       {"where", TokenKind::kWhere},
    {"setof", TokenKind::kSetof},     {"and", TokenKind::kAnd},
    {"or", TokenKind::kOr},           {"not", TokenKind::kNot},
    {"true", TokenKind::kTrue},       {"false", TokenKind::kFalse},
    {"null", TokenKind::kNull},
};

}  // namespace

std::vector<Token> lex_asl(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t pos = 0;
  std::size_t line = 1;
  std::size_t column = 1;

  const auto loc = [&]() -> SourceLoc { return {line, column, pos}; };
  const auto peek = [&](std::size_t ahead = 0) -> char {
    return pos + ahead < source.size() ? source[pos + ahead] : '\0';
  };
  const auto advance = [&]() -> char {
    const char c = source[pos++];
    if (c == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    return c;
  };
  const auto push = [&](TokenKind kind, SourceLoc at, std::string text = {}) {
    tokens.push_back({kind, std::move(text), 0, 0.0, at});
  };

  while (pos < source.size()) {
    const char c = peek();
    const SourceLoc at = loc();

    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (pos < source.size() && peek() != '\n') advance();
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      bool closed = false;
      while (pos < source.size()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          closed = true;
          break;
        }
        advance();
      }
      if (!closed) throw ParseError("unterminated block comment", at);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string text;
      while (pos < source.size() &&
             (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) {
        text += advance();
      }
      TokenKind kind = TokenKind::kIdent;
      for (const Keyword& kw : kKeywords) {
        if (support::iequals(text, kw.text)) {
          kind = kw.kind;
          break;
        }
      }
      push(kind, at, std::move(text));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string text;
      bool is_float = false;
      while (pos < source.size() &&
             std::isdigit(static_cast<unsigned char>(peek()))) {
        text += advance();
      }
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_float = true;
        text += advance();
        while (pos < source.size() &&
               std::isdigit(static_cast<unsigned char>(peek()))) {
          text += advance();
        }
      }
      if ((peek() == 'e' || peek() == 'E') &&
          (std::isdigit(static_cast<unsigned char>(peek(1))) ||
           ((peek(1) == '+' || peek(1) == '-') &&
            std::isdigit(static_cast<unsigned char>(peek(2)))))) {
        is_float = true;
        text += advance();
        if (peek() == '+' || peek() == '-') text += advance();
        while (pos < source.size() &&
               std::isdigit(static_cast<unsigned char>(peek()))) {
          text += advance();
        }
      }
      Token tok;
      tok.loc = at;
      tok.text = text;
      if (is_float) {
        tok.kind = TokenKind::kFloatLit;
        tok.float_value = std::strtod(text.c_str(), nullptr);
      } else {
        tok.kind = TokenKind::kIntLit;
        tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      advance();
      std::string text;
      bool closed = false;
      while (pos < source.size()) {
        const char ch = advance();
        if (ch == '"') {
          closed = true;
          break;
        }
        if (ch == '\\' && pos < source.size()) {
          const char esc = advance();
          switch (esc) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case '\\': text += '\\'; break;
            case '"': text += '"'; break;
            default: text += esc; break;
          }
        } else {
          text += ch;
        }
      }
      if (!closed) throw ParseError("unterminated string literal", at);
      push(TokenKind::kStringLit, at, std::move(text));
      continue;
    }

    const char n = peek(1);
    switch (c) {
      case '{': advance(); push(TokenKind::kLBrace, at); continue;
      case '}': advance(); push(TokenKind::kRBrace, at); continue;
      case '(': advance(); push(TokenKind::kLParen, at); continue;
      case ')': advance(); push(TokenKind::kRParen, at); continue;
      case ';': advance(); push(TokenKind::kSemicolon, at); continue;
      case ':': advance(); push(TokenKind::kColon, at); continue;
      case ',': advance(); push(TokenKind::kComma, at); continue;
      case '.': advance(); push(TokenKind::kDot, at); continue;
      case '+': advance(); push(TokenKind::kPlus, at); continue;
      case '*': advance(); push(TokenKind::kStar, at); continue;
      case '/': advance(); push(TokenKind::kSlash, at); continue;
      case '-':
        advance();
        if (peek() == '>') {
          advance();
          push(TokenKind::kArrow, at);
        } else {
          push(TokenKind::kMinus, at);
        }
        continue;
      case '=':
        advance();
        if (peek() == '=') {
          advance();
          push(TokenKind::kEq, at);
        } else {
          push(TokenKind::kAssign, at);
        }
        continue;
      case '!':
        if (n == '=') {
          advance();
          advance();
          push(TokenKind::kNe, at);
          continue;
        }
        throw ParseError("unexpected character '!'", at);
      case '<':
        advance();
        if (peek() == '=') {
          advance();
          push(TokenKind::kLe, at);
        } else {
          push(TokenKind::kLt, at);
        }
        continue;
      case '>':
        advance();
        if (peek() == '=') {
          advance();
          push(TokenKind::kGe, at);
        } else {
          push(TokenKind::kGt, at);
        }
        continue;
      default:
        throw ParseError(support::cat("unexpected character '", c, "'"), at);
    }
  }
  tokens.push_back({TokenKind::kEnd, "", 0, 0.0, loc()});
  return tokens;
}

}  // namespace kojak::asl
