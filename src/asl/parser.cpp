#include "asl/parser.hpp"

#include <optional>

#include "asl/lexer.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::asl {

using ast::Expr;
using ast::ExprPtr;
using support::ParseError;

namespace {

/// Token kinds that can begin an expression; used to disambiguate a
/// `(cond-id)` prefix from a parenthesized expression (Figure 1 leaves this
/// to the reader: `(c1) x > 0` labels, `(x) > 0` compares).
bool starts_expression(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
    case TokenKind::kIntLit:
    case TokenKind::kFloatLit:
    case TokenKind::kStringLit:
    case TokenKind::kTrue:
    case TokenKind::kFalse:
    case TokenKind::kNull:
    case TokenKind::kLParen:
    case TokenKind::kLBrace:
    case TokenKind::kNot:
      return true;
    default:
      return false;
  }
}

class Parser {
 public:
  Parser(std::string_view source, support::DiagnosticEngine& diags)
      : tokens_(lex_asl(source)), diags_(diags) {}

  ast::SpecFile parse_spec_file() {
    ast::SpecFile spec;
    while (!peek().is(TokenKind::kEnd)) {
      const std::size_t before = pos_;
      try {
        parse_declaration(spec);
      } catch (const ParseError& error) {
        diags_.error(error.loc(), error.what());
        recover_to_next_declaration(before);
      }
    }
    return spec;
  }

 private:
  // --- token plumbing ----------------------------------------------------
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() {
    const Token& tok = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return tok;
  }
  bool accept(TokenKind kind) {
    if (peek().is(kind)) {
      advance();
      return true;
    }
    return false;
  }
  const Token& expect(TokenKind kind, std::string_view context) {
    if (!peek().is(kind)) {
      throw ParseError(support::cat("expected ", to_string(kind), " ", context,
                                    ", got ", describe(peek())),
                       peek().loc);
    }
    return advance();
  }
  [[nodiscard]] static std::string describe(const Token& tok) {
    if (tok.kind == TokenKind::kIdent) return support::cat("'", tok.text, "'");
    if (tok.kind == TokenKind::kEnd) return "end of file";
    return std::string(to_string(tok.kind));
  }

  void recover_to_next_declaration(std::size_t error_start) {
    if (pos_ == error_start) advance();  // guarantee progress
    int depth = 0;
    while (!peek().is(TokenKind::kEnd)) {
      const TokenKind kind = peek().kind;
      if (depth == 0 &&
          (kind == TokenKind::kClass || kind == TokenKind::kEnum ||
           kind == TokenKind::kProperty || kind == TokenKind::kConst)) {
        return;
      }
      if (kind == TokenKind::kLBrace) ++depth;
      if (kind == TokenKind::kRBrace && depth > 0) --depth;
      const bool closing_rbrace = kind == TokenKind::kRBrace && depth == 0;
      advance();
      if (closing_rbrace) {
        accept(TokenKind::kSemicolon);
        return;
      }
    }
  }

  // --- declarations --------------------------------------------------------
  void parse_declaration(ast::SpecFile& spec) {
    switch (peek().kind) {
      case TokenKind::kClass:
        spec.classes.push_back(parse_class());
        return;
      case TokenKind::kEnum:
        spec.enums.push_back(parse_enum());
        return;
      case TokenKind::kProperty:
        spec.properties.push_back(parse_property());
        return;
      case TokenKind::kConst:
        spec.constants.push_back(parse_const());
        return;
      case TokenKind::kIdent:
      case TokenKind::kSetof:
        spec.functions.push_back(parse_function());
        return;
      default:
        throw ParseError(support::cat("expected a declaration, got ",
                                      describe(peek())),
                         peek().loc);
    }
  }

  ast::TypeName parse_type_name() {
    ast::TypeName type;
    type.loc = peek().loc;
    if (accept(TokenKind::kSetof)) {
      type.is_set = true;
    }
    type.name = expect(TokenKind::kIdent, "as type name").text;
    return type;
  }

  ast::ClassDecl parse_class() {
    ast::ClassDecl decl;
    decl.loc = expect(TokenKind::kClass, "").loc;
    decl.name = expect(TokenKind::kIdent, "as class name").text;
    if (accept(TokenKind::kExtends)) {
      decl.base = expect(TokenKind::kIdent, "as base class").text;
    }
    expect(TokenKind::kLBrace, "to open class body");
    while (!peek().is(TokenKind::kRBrace) && !peek().is(TokenKind::kEnd)) {
      ast::AttrDecl attr;
      attr.loc = peek().loc;
      attr.type = parse_type_name();
      attr.name = expect(TokenKind::kIdent, "as attribute name").text;
      expect(TokenKind::kSemicolon, "after attribute");
      decl.attrs.push_back(std::move(attr));
    }
    expect(TokenKind::kRBrace, "to close class body");
    accept(TokenKind::kSemicolon);
    return decl;
  }

  ast::EnumDecl parse_enum() {
    ast::EnumDecl decl;
    decl.loc = expect(TokenKind::kEnum, "").loc;
    decl.name = expect(TokenKind::kIdent, "as enum name").text;
    expect(TokenKind::kLBrace, "to open enum body");
    do {
      decl.members.push_back(expect(TokenKind::kIdent, "as enum member").text);
    } while (accept(TokenKind::kComma));
    expect(TokenKind::kRBrace, "to close enum body");
    accept(TokenKind::kSemicolon);
    return decl;
  }

  ast::ConstDecl parse_const() {
    ast::ConstDecl decl;
    decl.loc = expect(TokenKind::kConst, "").loc;
    decl.type = parse_type_name();
    decl.name = expect(TokenKind::kIdent, "as constant name").text;
    expect(TokenKind::kAssign, "in constant definition");
    decl.value = parse_expr();
    expect(TokenKind::kSemicolon, "after constant definition");
    return decl;
  }

  std::vector<ast::ParamDecl> parse_params() {
    std::vector<ast::ParamDecl> params;
    expect(TokenKind::kLParen, "to open parameter list");
    if (!peek().is(TokenKind::kRParen)) {
      do {
        ast::ParamDecl param;
        param.loc = peek().loc;
        param.type = parse_type_name();
        param.name = expect(TokenKind::kIdent, "as parameter name").text;
        params.push_back(std::move(param));
      } while (accept(TokenKind::kComma));
    }
    expect(TokenKind::kRParen, "to close parameter list");
    return params;
  }

  ast::FunctionDecl parse_function() {
    ast::FunctionDecl decl;
    decl.loc = peek().loc;
    decl.return_type = parse_type_name();
    decl.name = expect(TokenKind::kIdent, "as function name").text;
    decl.params = parse_params();
    expect(TokenKind::kAssign, "in function definition");
    decl.body = parse_expr();
    expect(TokenKind::kSemicolon, "after function definition");
    return decl;
  }

  ast::PropertyDecl parse_property() {
    ast::PropertyDecl decl;
    decl.loc = expect(TokenKind::kProperty, "").loc;
    decl.name = expect(TokenKind::kIdent, "as property name").text;
    decl.params = parse_params();
    expect(TokenKind::kLBrace, "to open property body");

    if (accept(TokenKind::kLet)) {
      // LET def* IN — definitions end at the IN keyword.
      while (!peek().is(TokenKind::kIn) && !peek().is(TokenKind::kEnd)) {
        ast::LetDef def;
        def.loc = peek().loc;
        def.type = parse_type_name();
        def.name = expect(TokenKind::kIdent, "as LET binding name").text;
        expect(TokenKind::kAssign, "in LET definition");
        def.init = parse_expr();
        // The paper's examples omit the ';' before IN; accept both.
        if (!peek().is(TokenKind::kIn)) {
          expect(TokenKind::kSemicolon, "after LET definition");
        } else {
          accept(TokenKind::kSemicolon);
        }
        decl.lets.push_back(std::move(def));
      }
      expect(TokenKind::kIn, "to end LET section");
    }

    expect(TokenKind::kCondition, "in property body");
    expect(TokenKind::kColon, "after CONDITION");
    do {
      decl.conditions.push_back(parse_condition());
    } while (accept(TokenKind::kOr));
    expect(TokenKind::kSemicolon, "after CONDITION clause");

    expect(TokenKind::kConfidence, "in property body");
    expect(TokenKind::kColon, "after CONFIDENCE");
    decl.confidence_is_max = parse_spec_value(decl.confidence);
    expect(TokenKind::kSemicolon, "after CONFIDENCE clause");

    expect(TokenKind::kSeverity, "in property body");
    expect(TokenKind::kColon, "after SEVERITY");
    decl.severity_is_max = parse_spec_value(decl.severity);
    expect(TokenKind::kSemicolon, "after SEVERITY clause");

    expect(TokenKind::kRBrace, "to close property body");
    accept(TokenKind::kSemicolon);
    return decl;
  }

  /// `['(' cond-id ')'] bool-expr` — the prefix is a condition id only when
  /// the parenthesized single identifier is followed by an expression start.
  ast::Condition parse_condition() {
    ast::Condition cond;
    cond.loc = peek().loc;
    if (peek().is(TokenKind::kLParen) && peek(1).is(TokenKind::kIdent) &&
        peek(2).is(TokenKind::kRParen) && starts_expression(peek(3).kind)) {
      advance();
      cond.id = advance().text;
      advance();
    }
    // Conditions are OR-separated at clause level (Figure 1), so each
    // condition expression binds tighter than OR.
    cond.pred = parse_and();
    return cond;
  }

  /// Parses a CONFIDENCE/SEVERITY payload. Returns true when the clause is
  /// the spec-level `MAX(list)` form. A spec-level MAX is recognized when
  /// MAX( ... ) contains a top-level comma or starts with a `(id) ->` guard;
  /// otherwise `MAX(...)` is an ordinary aggregate expression.
  bool parse_spec_value(std::vector<ast::GuardedExpr>& out) {
    if (peek().is(TokenKind::kIdent) && support::iequals(peek().text, "MAX") &&
        peek(1).is(TokenKind::kLParen) && is_spec_level_max()) {
      advance();  // MAX
      advance();  // (
      do {
        out.push_back(parse_guarded());
      } while (accept(TokenKind::kComma));
      expect(TokenKind::kRParen, "to close MAX list");
      return true;
    }
    out.push_back(parse_guarded());
    return false;
  }

  [[nodiscard]] bool is_spec_level_max() const {
    // Guard pattern right after "MAX(": '(' IDENT ')' '->'.
    if (peek(2).is(TokenKind::kLParen) && peek(3).is(TokenKind::kIdent) &&
        peek(4).is(TokenKind::kRParen) && peek(5).is(TokenKind::kArrow)) {
      return true;
    }
    // Otherwise scan for a comma at parenthesis depth 1.
    int depth = 0;
    for (std::size_t i = 1; peek(i).kind != TokenKind::kEnd; ++i) {
      const TokenKind kind = peek(i).kind;
      if (kind == TokenKind::kLParen || kind == TokenKind::kLBrace) ++depth;
      if (kind == TokenKind::kRParen || kind == TokenKind::kRBrace) {
        --depth;
        if (depth == 0) return false;
      }
      if (kind == TokenKind::kComma && depth == 1) return true;
      if (kind == TokenKind::kSemicolon) return false;
    }
    return false;
  }

  ast::GuardedExpr parse_guarded() {
    ast::GuardedExpr arm;
    arm.loc = peek().loc;
    if (peek().is(TokenKind::kLParen) && peek(1).is(TokenKind::kIdent) &&
        peek(2).is(TokenKind::kRParen) && peek(3).is(TokenKind::kArrow)) {
      advance();
      arm.guard = advance().text;
      advance();
      advance();
    }
    arm.expr = parse_expr();
    return arm;
  }

  // --- expressions ---------------------------------------------------------
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr make_binary(ast::BinOp op, ExprPtr lhs, ExprPtr rhs,
                      support::SourceLoc loc) {
    ExprPtr e = ast::make_expr(Expr::Kind::kBinary, loc);
    e->bin_op = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (peek().is(TokenKind::kOr)) {
      const auto loc = advance().loc;
      lhs = make_binary(ast::BinOp::kOr, std::move(lhs), parse_and(), loc);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_not();
    while (peek().is(TokenKind::kAnd)) {
      const auto loc = advance().loc;
      lhs = make_binary(ast::BinOp::kAnd, std::move(lhs), parse_not(), loc);
    }
    return lhs;
  }

  ExprPtr parse_not() {
    if (peek().is(TokenKind::kNot)) {
      const auto loc = advance().loc;
      ExprPtr e = ast::make_expr(Expr::Kind::kUnary, loc);
      e->un_op = ast::UnOp::kNot;
      e->lhs = parse_not();
      return e;
    }
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    ExprPtr lhs = parse_additive();
    struct OpMap {
      TokenKind token;
      ast::BinOp op;
    };
    static constexpr OpMap kOps[] = {
        {TokenKind::kEq, ast::BinOp::kEq}, {TokenKind::kNe, ast::BinOp::kNe},
        {TokenKind::kLt, ast::BinOp::kLt}, {TokenKind::kLe, ast::BinOp::kLe},
        {TokenKind::kGt, ast::BinOp::kGt}, {TokenKind::kGe, ast::BinOp::kGe},
    };
    for (const auto& [token, op] : kOps) {
      if (peek().is(token)) {
        const auto loc = advance().loc;
        return make_binary(op, std::move(lhs), parse_additive(), loc);
      }
    }
    return lhs;
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (peek().is(TokenKind::kPlus) || peek().is(TokenKind::kMinus)) {
      const ast::BinOp op =
          peek().is(TokenKind::kPlus) ? ast::BinOp::kAdd : ast::BinOp::kSub;
      const auto loc = advance().loc;
      lhs = make_binary(op, std::move(lhs), parse_multiplicative(), loc);
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (peek().is(TokenKind::kStar) || peek().is(TokenKind::kSlash)) {
      const ast::BinOp op =
          peek().is(TokenKind::kStar) ? ast::BinOp::kMul : ast::BinOp::kDiv;
      const auto loc = advance().loc;
      lhs = make_binary(op, std::move(lhs), parse_unary(), loc);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (peek().is(TokenKind::kMinus)) {
      const auto loc = advance().loc;
      ExprPtr e = ast::make_expr(Expr::Kind::kUnary, loc);
      e->un_op = ast::UnOp::kNeg;
      e->lhs = parse_unary();
      return e;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr base = parse_primary();
    while (accept(TokenKind::kDot)) {
      const Token& attr = expect(TokenKind::kIdent, "as attribute name");
      ExprPtr member = ast::make_expr(Expr::Kind::kMember, attr.loc);
      member->name = attr.text;
      member->base = std::move(base);
      base = std::move(member);
    }
    return base;
  }

  [[nodiscard]] static std::optional<ast::AggKind> aggregate_kind(
      std::string_view name) {
    if (support::iequals(name, "MIN")) return ast::AggKind::kMin;
    if (support::iequals(name, "MAX")) return ast::AggKind::kMax;
    if (support::iequals(name, "SUM")) return ast::AggKind::kSum;
    if (support::iequals(name, "AVG")) return ast::AggKind::kAvg;
    return std::nullopt;
  }

  ExprPtr parse_primary() {
    const Token& tok = peek();
    switch (tok.kind) {
      case TokenKind::kIntLit: {
        ExprPtr e = ast::make_expr(Expr::Kind::kIntLit, tok.loc);
        e->int_value = advance().int_value;
        return e;
      }
      case TokenKind::kFloatLit: {
        ExprPtr e = ast::make_expr(Expr::Kind::kFloatLit, tok.loc);
        e->float_value = advance().float_value;
        return e;
      }
      case TokenKind::kStringLit: {
        ExprPtr e = ast::make_expr(Expr::Kind::kStringLit, tok.loc);
        e->string_value = advance().text;
        return e;
      }
      case TokenKind::kTrue:
      case TokenKind::kFalse: {
        ExprPtr e = ast::make_expr(Expr::Kind::kBoolLit, tok.loc);
        e->bool_value = advance().is(TokenKind::kTrue);
        return e;
      }
      case TokenKind::kNull:
        advance();
        return ast::make_expr(Expr::Kind::kNullLit, tok.loc);
      case TokenKind::kLParen: {
        advance();
        ExprPtr inner = parse_expr();
        expect(TokenKind::kRParen, "to close parenthesized expression");
        return inner;
      }
      case TokenKind::kLBrace:
        return parse_comprehension();
      case TokenKind::kIdent: {
        std::string name = advance().text;
        if (!peek().is(TokenKind::kLParen)) {
          ExprPtr e = ast::make_expr(Expr::Kind::kIdent, tok.loc);
          e->name = std::move(name);
          return e;
        }
        advance();  // (
        if (support::iequals(name, "UNIQUE") || support::iequals(name, "EXISTS") ||
            support::iequals(name, "SIZE")) {
          Expr::Kind kind = Expr::Kind::kUnique;
          if (support::iequals(name, "EXISTS")) kind = Expr::Kind::kExists;
          if (support::iequals(name, "SIZE")) kind = Expr::Kind::kSize;
          ExprPtr e = ast::make_expr(kind, tok.loc);
          e->base = parse_expr();
          expect(TokenKind::kRParen, support::cat("to close ", name, "(...)"));
          return e;
        }
        if (const auto agg = aggregate_kind(name)) {
          return parse_aggregate_body(*agg, tok.loc);
        }
        if (support::iequals(name, "COUNT")) {
          // COUNT(set) counts elements; COUNT(x WHERE x IN s ...) is the
          // binder aggregate.
          return parse_count_body(tok.loc);
        }
        // User-defined specification function call.
        ExprPtr e = ast::make_expr(Expr::Kind::kCall, tok.loc);
        e->name = std::move(name);
        if (!peek().is(TokenKind::kRParen)) {
          do {
            e->args.push_back(parse_expr());
          } while (accept(TokenKind::kComma));
        }
        expect(TokenKind::kRParen, "to close call");
        return e;
      }
      default:
        throw ParseError(support::cat("expected an expression, got ",
                                      describe(tok)),
                         tok.loc);
    }
  }

  /// `{ binder IN set [WITH pred] }`
  ExprPtr parse_comprehension() {
    const auto loc = expect(TokenKind::kLBrace, "").loc;
    ExprPtr e = ast::make_expr(Expr::Kind::kComprehension, loc);
    e->name = expect(TokenKind::kIdent, "as comprehension binder").text;
    expect(TokenKind::kIn, "in set comprehension");
    e->base = parse_expr();
    if (accept(TokenKind::kWith)) {
      e->filter = parse_expr();
    }
    expect(TokenKind::kRBrace, "to close set comprehension");
    return e;
  }

  /// Body after `AGG(`: either `value WHERE binder IN set [AND pred]*` or a
  /// bare scalar `value` (list-MAX degenerates to identity on one value).
  ExprPtr parse_aggregate_body(ast::AggKind kind, support::SourceLoc loc) {
    ExprPtr e = ast::make_expr(Expr::Kind::kAggregate, loc);
    e->agg_kind = kind;
    e->agg_value = parse_expr();
    if (accept(TokenKind::kWhere)) {
      e->name = expect(TokenKind::kIdent, "as aggregate binder").text;
      expect(TokenKind::kIn, "in aggregate WHERE clause");
      // The set expression ends at AND (filters) or ')'. Parse at comparison
      // precedence so `s IN r.TotTimes AND pred` splits correctly.
      e->base = parse_comparison();
      if (accept(TokenKind::kAnd)) {
        ExprPtr filter = parse_not();
        while (accept(TokenKind::kAnd)) {
          const auto and_loc = peek().loc;
          filter = make_binary(ast::BinOp::kAnd, std::move(filter), parse_not(),
                               and_loc);
        }
        e->filter = std::move(filter);
      }
    }
    expect(TokenKind::kRParen, "to close aggregate");
    return e;
  }

  ExprPtr parse_count_body(support::SourceLoc loc) {
    ExprPtr value = parse_expr();
    if (accept(TokenKind::kWhere)) {
      ExprPtr e = ast::make_expr(Expr::Kind::kAggregate, loc);
      e->agg_kind = ast::AggKind::kCount;
      e->agg_value = std::move(value);
      e->name = expect(TokenKind::kIdent, "as aggregate binder").text;
      expect(TokenKind::kIn, "in aggregate WHERE clause");
      e->base = parse_comparison();
      if (accept(TokenKind::kAnd)) {
        ExprPtr filter = parse_not();
        while (accept(TokenKind::kAnd)) {
          const auto and_loc = peek().loc;
          filter = make_binary(ast::BinOp::kAnd, std::move(filter), parse_not(),
                               and_loc);
        }
        e->filter = std::move(filter);
      }
      expect(TokenKind::kRParen, "to close COUNT");
      return e;
    }
    ExprPtr e = ast::make_expr(Expr::Kind::kSize, loc);
    e->base = std::move(value);
    expect(TokenKind::kRParen, "to close COUNT");
    return e;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  support::DiagnosticEngine& diags_;
};

}  // namespace

ParseResult parse_spec(std::string_view source) {
  ParseResult result;
  try {
    Parser parser(source, result.diags);
    result.spec = parser.parse_spec_file();
  } catch (const ParseError& error) {
    // Lexer errors arrive here (no recovery possible without tokens).
    result.diags.error(error.loc(), error.what());
  }
  return result;
}

ast::SpecFile parse_spec_or_throw(std::string_view source) {
  ParseResult result = parse_spec(source);
  if (!result.ok()) {
    const auto loc = result.diags.diagnostics().front().loc;
    throw ParseError(support::cat("specification has syntax errors:\n",
                                  result.diags.render(source)),
                     loc);
  }
  return std::move(result.spec);
}

}  // namespace kojak::asl
