#ifndef KOJAK_ASL_COMPILABILITY_HPP
#define KOJAK_ASL_COMPILABILITY_HPP

#include <string>
#include <vector>

#include "asl/model.hpp"

namespace kojak::asl {

/// Verdict for one translation site of a property: a LET initializer, a
/// condition predicate, or a confidence/severity arm.
struct SiteCompilability {
  std::string site;  ///< e.g. "let TotalCost", "condition (p2p)", "severity #1"
  bool compilable = true;
  std::string reason;  ///< first blocker when not compilable
};

/// Whole-condition compilability of a property (paper §6: "translate the
/// conditions of performance properties entirely into SQL"). A property is
/// whole-condition compilable when every site can become part of a single
/// FROM-less SELECT of scalar subqueries — the static contract the
/// sql-whole-condition backend relies on before attempting a translation.
struct PropertyCompilability {
  std::string property;
  std::vector<SiteCompilability> sites;

  [[nodiscard]] bool whole_condition_compilable() const {
    for (const SiteCompilability& site : sites) {
      if (!site.compilable) return false;
    }
    return true;
  }
  /// The first blocking site, or nullptr when fully compilable.
  [[nodiscard]] const SiteCompilability* first_blocker() const {
    for (const SiteCompilability& site : sites) {
      if (!site.compilable) return &site;
    }
    return nullptr;
  }
};

/// Statically classifies every site of `prop` for whole-condition SQL
/// compilation. The rules mirror the compiler in cosy::SqlEvaluator:
///  * scalar glue (arithmetic, comparisons, AND/OR, NOT) compiles;
///  * set expressions must be setof-attribute chains or comprehensions
///    over one, and are consumed by UNIQUE/EXISTS/SIZE or an aggregate;
///  * aggregates and function calls correlated with an enclosing set
///    binder are not compilable (the engine's scalar subqueries are
///    uncorrelated);
///  * specification functions are inlined (recursion is rejected);
///  * a set value in scalar position is not compilable.
/// The classification needs no database and no data: it is pure structure,
/// so tools can report "which properties would fall back" up front.
[[nodiscard]] PropertyCompilability classify_whole_condition(
    const Model& model, const PropertyInfo& prop);

/// Classifies every property of the model.
[[nodiscard]] std::vector<PropertyCompilability> classify_whole_condition(
    const Model& model);

/// True when `e` mentions `name` outside a shadowing comprehension or
/// aggregate binder of the same name — the binder-correlation test shared
/// by the SQL compilers and this classifier.
[[nodiscard]] bool mentions_name(const ast::Expr& e, const std::string& name);

}  // namespace kojak::asl

#endif  // KOJAK_ASL_COMPILABILITY_HPP
