#ifndef KOJAK_ASL_OBJECT_STORE_HPP
#define KOJAK_ASL_OBJECT_STORE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "asl/model.hpp"
#include "support/error.hpp"

namespace kojak::asl {

using ObjectId = std::uint32_t;
inline constexpr ObjectId kNullObject = 0xFFFFFFFFu;

struct EnumVal {
  std::uint32_t enum_id = 0;
  std::int32_t ordinal = 0;
  friend bool operator==(const EnumVal&, const EnumVal&) = default;
};

struct ObjRef {
  ObjectId id = kNullObject;
  friend bool operator==(const ObjRef&, const ObjRef&) = default;
};

using SetPtr = std::shared_ptr<const std::vector<ObjectId>>;

/// Runtime value of the ASL interpreter: scalar, enum, object reference, or
/// set of objects. DateTime values are int64 epoch seconds (the attribute's
/// declared type distinguishes them).
class RtValue {
 public:
  RtValue() = default;  // null

  [[nodiscard]] static RtValue null() { return RtValue(); }
  [[nodiscard]] static RtValue of_int(std::int64_t v) { return RtValue(Payload(v)); }
  [[nodiscard]] static RtValue of_float(double v) { return RtValue(Payload(v)); }
  [[nodiscard]] static RtValue of_bool(bool v) { return RtValue(Payload(v)); }
  [[nodiscard]] static RtValue of_string(std::string v) {
    return RtValue(Payload(std::move(v)));
  }
  [[nodiscard]] static RtValue of_enum(std::uint32_t enum_id, std::int32_t ordinal) {
    return RtValue(Payload(EnumVal{enum_id, ordinal}));
  }
  [[nodiscard]] static RtValue of_object(ObjectId id) {
    return id == kNullObject ? RtValue() : RtValue(Payload(ObjRef{id}));
  }
  [[nodiscard]] static RtValue of_set(SetPtr set) {
    return RtValue(Payload(std::move(set)));
  }

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::monostate>(v_);
  }
  [[nodiscard]] bool is_int() const noexcept {
    return std::holds_alternative<std::int64_t>(v_);
  }
  [[nodiscard]] bool is_float() const noexcept {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_numeric() const noexcept { return is_int() || is_float(); }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_enum() const noexcept {
    return std::holds_alternative<EnumVal>(v_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<ObjRef>(v_);
  }
  [[nodiscard]] bool is_set() const noexcept {
    return std::holds_alternative<SetPtr>(v_);
  }

  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_float() const;  // accepts int
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] EnumVal as_enum() const;
  /// kNullObject for a null value; the object id otherwise.
  [[nodiscard]] ObjectId as_object() const;
  [[nodiscard]] const std::vector<ObjectId>& as_set() const;

  /// Identity/structural equality as defined by ASL `==`.
  [[nodiscard]] static bool equals(const RtValue& a, const RtValue& b);

  [[nodiscard]] std::string to_display() const;

 private:
  using Payload = std::variant<std::monostate, std::int64_t, double, bool,
                               std::string, EnumVal, ObjRef, SetPtr>;
  explicit RtValue(Payload v) : v_(std::move(v)) {}
  Payload v_;
};

/// One object of the performance data: class id plus attribute slots laid
/// out per the Model's flattened attribute list.
struct Object {
  std::uint32_t class_id = 0;
  std::vector<RtValue> attrs;
};

/// The runtime instance population of a data model. Objects are created by
/// the importer and then treated as immutable by evaluation.
class ObjectStore {
 public:
  explicit ObjectStore(const Model& model) : model_(&model) {}

  [[nodiscard]] const Model& model() const noexcept { return *model_; }

  ObjectId create(std::uint32_t class_id);
  ObjectId create(std::string_view class_name);

  [[nodiscard]] const Object& object(ObjectId id) const { return objects_.at(id); }
  [[nodiscard]] std::size_t size() const noexcept { return objects_.size(); }

  void set_attr(ObjectId id, std::string_view attr, RtValue value);
  void set_attr(ObjectId id, std::size_t attr_index, RtValue value);
  [[nodiscard]] const RtValue& attr(ObjectId id, std::string_view attr) const;
  [[nodiscard]] const RtValue& attr(ObjectId id, std::size_t attr_index) const {
    return objects_.at(id).attrs.at(attr_index);
  }

  /// Appends `member` to the `setof` attribute, creating the set if absent.
  void add_to_set(ObjectId id, std::string_view attr, ObjectId member);

  /// All objects whose class is `class_id` (optionally including subclasses).
  [[nodiscard]] std::vector<ObjectId> all_of(std::uint32_t class_id,
                                             bool include_subclasses = true) const;
  [[nodiscard]] std::vector<ObjectId> all_of(std::string_view class_name,
                                             bool include_subclasses = true) const;

 private:
  [[nodiscard]] std::size_t attr_index_checked(ObjectId id,
                                               std::string_view attr) const;

  const Model* model_;
  std::vector<Object> objects_;
  std::vector<std::vector<ObjectId>> by_class_;
};

}  // namespace kojak::asl

#endif  // KOJAK_ASL_OBJECT_STORE_HPP
