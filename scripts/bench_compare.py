#!/usr/bin/env python3
"""Diff two google-benchmark JSON reports (BENCH_*.json artifacts).

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]

Matches benchmarks by name and prints a table of real/cpu time deltas plus
any user counters that moved; benchmarks present on only one side are
listed as added/removed (never crashed on, never silently skipped). Exit
code is 0 unless an input is unreadable or malformed (not valid
google-benchmark JSON) or --strict promoted --fail-above regressions to a
failure — by default the comparison is informational (CI runners are shared
hardware; treating timing noise as failure would just train people to
ignore red), the point is that every PR's bench trajectory is one click
away from the committed baseline.

--pair PREFIX_A PREFIX_B (repeatable) additionally prints current-report
real-time ratios between two benchmark families (the Release CI job uses it
for the partition-union-vs-flat and distributed-scatter-vs-serial deltas of
bench_pushdown).
"""

from __future__ import annotations

import argparse
import json
import sys


def load_report(path: str) -> dict[str, dict]:
    """name -> benchmark entry of a google-benchmark JSON report.

    Malformed input (unreadable file, invalid JSON, or JSON that is not a
    google-benchmark report shape) exits nonzero with a one-line message
    instead of a traceback: CI must fail loudly when an artifact is broken,
    not diff garbage.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"bench_compare: cannot read {path}: {error}")
    if not isinstance(payload, dict) or not isinstance(
        payload.get("benchmarks"), list
    ):
        raise SystemExit(
            f"bench_compare: {path} is not a google-benchmark JSON report "
            "(no 'benchmarks' list)"
        )
    entries = {}
    duplicates = set()
    for bench in payload.get("benchmarks", []):
        if not isinstance(bench, dict) or "name" not in bench:
            raise SystemExit(
                f"bench_compare: {path} has a benchmark entry without a name"
            )
        # Aggregate rows (mean/median/stddev) would double-count; keep the
        # plain iterations rows, which is all the smoke reports emit.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        if bench["name"] in entries:
            duplicates.add(bench["name"])
        entries[bench["name"]] = bench
    if duplicates:
        # A --benchmark_repetitions report has several iteration rows per
        # name; comparing an arbitrary one is ambiguous, so say which rows
        # this diff is built from instead of pretending it is exact.
        print(
            f"bench_compare: warning: {path} repeats "
            f"{', '.join(sorted(duplicates))}; using the last row of each "
            "(rerun without --benchmark_repetitions for exact diffs)",
            file=sys.stderr,
        )
    return entries


def fmt_time(entry: dict, key: str) -> str:
    return f"{entry.get(key, 0.0):.3f}{entry.get('time_unit', 'ns')}"


def fmt_delta(base: float, cur: float) -> str:
    if base <= 0:
        return "n/a"
    return f"{(cur - base) / base * 100.0:+.1f}%"


# Keys google-benchmark emits for every entry; anything else numeric in an
# entry is a user counter (the JSON writer inlines counters at top level,
# there is no "counters" sub-object).
_BUILTIN_KEYS = frozenset({
    "family_index", "per_family_instance_index", "repetitions",
    "repetition_index", "threads", "iterations", "real_time", "cpu_time",
})


def user_counters(entry: dict) -> dict[str, float]:
    return {
        key: value
        for key, value in entry.items()
        if key not in _BUILTIN_KEYS
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
    }


def counter_moves(base: dict, cur: dict) -> list[str]:
    moves = []
    base_counters = user_counters(base)
    cur_counters = user_counters(cur)
    for name in sorted(set(base_counters) | set(cur_counters)):
        a = base_counters.get(name)
        b = cur_counters.get(name)
        if a != b:
            moves.append(f"{name}: {a} -> {b}")
    return moves


def print_pair_deltas(cur: dict[str, dict], prefix_a: str, prefix_b: str) -> None:
    """In-report comparison of two benchmark families of the CURRENT run.

    Matches entries whose names differ only in the leading prefix (e.g.
    BM_PartitionUnion/parts_8 vs BM_PartitionFlat/parts_8) and prints the
    real-time ratio — this is how CI surfaces the partition-union-vs-flat
    delta without a second artifact.
    """
    printed = 0
    for name in sorted(cur):
        if not name.startswith(prefix_a):
            continue
        partner = prefix_b + name[len(prefix_a):]
        if partner not in cur:
            continue
        a, b = cur[name], cur[partner]
        a_time = a.get("real_time", 0.0)
        b_time = b.get("real_time", 0.0)
        ratio = f"{a_time / b_time:.3f}x" if b_time > 0 else "n/a"
        counters = "; ".join(
            f"{k}={a_val:g} vs {b_val:g}"
            for (k, a_val), b_val in (
                ((k, v), user_counters(b).get(k))
                for k, v in sorted(user_counters(a).items())
            )
            if b_val is not None
        )
        print(
            f"pair {name} vs {partner}: "
            f"{a_time:.3f}{a.get('time_unit', 'ns')} vs "
            f"{b_time:.3f}{b.get('time_unit', 'ns')} ({ratio})"
            + (f"  [{counters}]" if counters else "")
        )
        printed += 1
    if printed == 0:
        print(f"pair {prefix_a} vs {prefix_b}: no matching benchmarks")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument("current", help="freshly generated BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="highlight real-time deltas beyond this percentage (default 10)",
    )
    parser.add_argument(
        "--fail-above",
        type=float,
        default=None,
        metavar="PCT",
        help="emit a GitHub ::warning annotation for every benchmark whose "
        "real time regressed more than PCT%% over the baseline; exit code "
        "stays 0 (shared CI hardware makes timing a signal, not a gate)",
    )
    parser.add_argument(
        "--pair",
        nargs=2,
        action="append",
        metavar=("PREFIX_A", "PREFIX_B"),
        help="also print current-report real-time ratios between two "
        "benchmark name prefixes (e.g. BM_PartitionUnion BM_PartitionFlat); "
        "repeatable",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when --fail-above annotated any regression "
        "(turns the annotations into a gate; no effect without "
        "--fail-above)",
    )
    args = parser.parse_args()

    base = load_report(args.baseline)
    cur = load_report(args.current)

    names = sorted(set(base) | set(cur))
    width = max((len(n) for n in names), default=9)
    print(f"--- bench compare: {args.baseline} vs {args.current} ---")
    print(f"{'benchmark':<{width}}  {'base real':>12}  {'cur real':>12}  "
          f"{'delta':>8}  note")
    flagged = 0
    for name in names:
        if name not in cur:
            print(f"{name:<{width}}  {fmt_time(base[name], 'real_time'):>12}  "
                  f"{'-':>12}  {'-':>8}  REMOVED")
            continue
        if name not in base:
            print(f"{name:<{width}}  {'-':>12}  "
                  f"{fmt_time(cur[name], 'real_time'):>12}  {'-':>8}  ADDED")
            continue
        b, c = base[name], cur[name]
        delta = fmt_delta(b.get("real_time", 0.0), c.get("real_time", 0.0))
        notes = []
        if (
            b.get("real_time", 0.0) > 0
            and abs(c.get("real_time", 0.0) - b.get("real_time", 0.0))
            / b.get("real_time", 1.0)
            * 100.0
            > args.threshold
        ):
            notes.append(f">|{args.threshold:g}%|")
            flagged += 1
        notes.extend(counter_moves(b, c))
        print(f"{name:<{width}}  {fmt_time(b, 'real_time'):>12}  "
              f"{fmt_time(c, 'real_time'):>12}  {delta:>8}  "
              f"{'; '.join(notes)}")
    print(f"--- {len(names)} benchmarks, {flagged} beyond "
          f"{args.threshold:g}% real-time delta ---")
    regressed = 0
    if args.fail_above is not None:
        for name in names:
            if name not in base or name not in cur:
                continue
            base_time = base[name].get("real_time", 0.0)
            cur_time = cur[name].get("real_time", 0.0)
            if base_time <= 0:
                continue
            slowdown = (cur_time - base_time) / base_time * 100.0
            if slowdown > args.fail_above:
                # GitHub Actions annotation: surfaced on the PR without
                # failing the job (exit stays 0 by design, see --help).
                print(
                    f"::warning title=bench regression::{name} real time "
                    f"{slowdown:+.1f}% over baseline "
                    f"({fmt_time(base[name], 'real_time')} -> "
                    f"{fmt_time(cur[name], 'real_time')})"
                )
                regressed += 1
        print(
            f"--- fail-above {args.fail_above:g}%: {regressed} "
            "regression(s) annotated ---"
        )
    for pair in args.pair or []:
        print_pair_deltas(cur, pair[0], pair[1])
    if args.strict and regressed > 0:
        print(
            f"bench_compare: --strict: {regressed} regression(s) beyond "
            f"{args.fail_above:g}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
