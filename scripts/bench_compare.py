#!/usr/bin/env python3
"""Diff two google-benchmark JSON reports (BENCH_*.json artifacts).

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]

Matches benchmarks by name and prints a table of real/cpu time deltas plus
any user counters that moved; benchmarks present on only one side are
listed as added/removed. Exit code is 0 unless an input is unreadable —
the comparison is informational (CI runners are shared hardware; treating
timing noise as failure would just train people to ignore red), the point
is that every PR's bench trajectory is one click away from the committed
baseline.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_report(path: str) -> dict[str, dict]:
    """name -> benchmark entry of a google-benchmark JSON report."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"bench_compare: cannot read {path}: {error}")
    entries = {}
    for bench in payload.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev) would double-count; keep the
        # plain iterations rows, which is all the smoke reports emit.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        entries[bench["name"]] = bench
    return entries


def fmt_time(entry: dict, key: str) -> str:
    return f"{entry.get(key, 0.0):.3f}{entry.get('time_unit', 'ns')}"


def fmt_delta(base: float, cur: float) -> str:
    if base <= 0:
        return "n/a"
    return f"{(cur - base) / base * 100.0:+.1f}%"


def counter_moves(base: dict, cur: dict) -> list[str]:
    moves = []
    base_counters = base.get("counters", {}) or {}
    cur_counters = cur.get("counters", {}) or {}
    for name in sorted(set(base_counters) | set(cur_counters)):
        a = base_counters.get(name)
        b = cur_counters.get(name)
        if a != b:
            moves.append(f"{name}: {a} -> {b}")
    return moves


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument("current", help="freshly generated BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="highlight real-time deltas beyond this percentage (default 10)",
    )
    args = parser.parse_args()

    base = load_report(args.baseline)
    cur = load_report(args.current)

    names = sorted(set(base) | set(cur))
    width = max((len(n) for n in names), default=9)
    print(f"--- bench compare: {args.baseline} vs {args.current} ---")
    print(f"{'benchmark':<{width}}  {'base real':>12}  {'cur real':>12}  "
          f"{'delta':>8}  note")
    flagged = 0
    for name in names:
        if name not in cur:
            print(f"{name:<{width}}  {fmt_time(base[name], 'real_time'):>12}  "
                  f"{'-':>12}  {'-':>8}  REMOVED")
            continue
        if name not in base:
            print(f"{name:<{width}}  {'-':>12}  "
                  f"{fmt_time(cur[name], 'real_time'):>12}  {'-':>8}  ADDED")
            continue
        b, c = base[name], cur[name]
        delta = fmt_delta(b.get("real_time", 0.0), c.get("real_time", 0.0))
        notes = []
        if (
            b.get("real_time", 0.0) > 0
            and abs(c.get("real_time", 0.0) - b.get("real_time", 0.0))
            / b.get("real_time", 1.0)
            * 100.0
            > args.threshold
        ):
            notes.append(f">|{args.threshold:g}%|")
            flagged += 1
        notes.extend(counter_moves(b, c))
        print(f"{name:<{width}}  {fmt_time(b, 'real_time'):>12}  "
              f"{fmt_time(c, 'real_time'):>12}  {delta:>8}  "
              f"{'; '.join(notes)}")
    print(f"--- {len(names)} benchmarks, {flagged} beyond "
          f"{args.threshold:g}% real-time delta ---")
    return 0


if __name__ == "__main__":
    sys.exit(main())
